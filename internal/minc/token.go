// Package minc implements a small C-subset compiler targeting VX64. It is
// the substrate that produces the "compiled binary code" the BREW rewriter
// consumes: the paper's workflow starts from functions compiled by an
// optimizing compiler the programmer does not control, and its Section V.C
// ("Failed Approaches to Avoid Loop Unrolling") depends on the compiler
// being free to transform code as long as observable behavior is kept.
//
// Supported language (C syntax):
//
//	types:       long, double, T*, struct S, typedef'd function pointers
//	globals:     scalars, arrays, structs with initializer lists
//	functions:   up to 6 integer/pointer and 8 double parameters
//	statements:  declarations, assignment (=, +=, -=, *=), if/else, while,
//	             for, return, break, continue, blocks, expression stmts
//	expressions: integer/float literals, arithmetic, comparisons, &&/||/!,
//	             bit ops, casts, array subscript, ->, ., &, *, calls
//	             (direct and through function-pointer variables), ++/--
//	             as statements
package minc

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct
	tokKeyword
)

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokInt:
		return fmt.Sprintf("%d", t.ival)
	case tokFloat:
		return fmt.Sprintf("%g", t.fval)
	default:
		return t.text
	}
}

var keywords = map[string]bool{
	"long": true, "int": true, "double": true, "void": true,
	"struct": true, "typedef": true, "return": true, "if": true,
	"else": true, "while": true, "for": true, "break": true,
	"continue": true, "extern": true, "static": true, "const": true,
	"sizeof": true,
}

// Error is a compile error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("minc:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByte2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.peekByte2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return errAt(line, col, "unterminated block comment")
				}
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

var punctuators = []string{
	"<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
	"&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.peekByte()

	if isIdentStart(c) {
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	}

	if isDigit(c) || (c == '.' && isDigit(l.peekByte2())) {
		return l.number(line, col)
	}

	rest := l.src[l.pos:]
	for _, p := range punctuators {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return token{kind: tokPunct, text: p, line: line, col: col}, nil
		}
	}
	return token{}, errAt(line, col, "unexpected character %q", c)
}

func (l *lexer) number(line, col int) (token, error) {
	start := l.pos
	isFloat := false
	if l.peekByte() == '0' && (l.peekByte2() == 'x' || l.peekByte2() == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHex(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, errAt(line, col, "bad hex literal %q", text)
		}
		return token{kind: tokInt, ival: v, text: text, line: line, col: col}, nil
	}
	for l.pos < len(l.src) && isDigit(l.peekByte()) {
		l.advance()
	}
	if l.peekByte() == '.' {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
	}
	if l.peekByte() == 'e' || l.peekByte() == 'E' {
		isFloat = true
		l.advance()
		if l.peekByte() == '+' || l.peekByte() == '-' {
			l.advance()
		}
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, errAt(line, col, "bad float literal %q", text)
		}
		return token{kind: tokFloat, fval: f, text: text, line: line, col: col}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{}, errAt(line, col, "bad int literal %q", text)
	}
	return token{kind: tokInt, ival: v, text: text, line: line, col: col}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
func isDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isHex(c byte) bool       { return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' }
