package minc

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// The IR: three-address code over virtual registers in two classes, with
// explicit basic blocks. It is deliberately non-SSA; virtual registers may
// be assigned more than once (?: arms, loop variables), and the register
// allocator runs real liveness analysis.

type vclass uint8

const (
	classInt vclass = iota
	classFloat
)

type irOp int

const (
	irConst irOp = iota
	irConstF
	irMov    // Dst = A
	irBin    // Dst = A <Op2> B (or Imm when UseImm)
	irNeg    // Dst = -A
	irNot    // Dst = ^A
	irSet    // Dst = (A <Cond> B) ? 1 : 0
	irCvtIF  // Dst(float) = (double) A(int)
	irCvtFI  // Dst(int) = (long) A(float)
	irBitsFI // Dst(int) = raw bits of A(float)  [runtime helpers]
	irLoad   // Dst = mem[A + Off] (Size 1 or 8)
	irStore  // mem[A + Off] = B
	irAddr   // Dst = address of Sym (global) or frame slot (local)
	irParam  // Dst = incoming parameter Idx (ABI register)
	irCall   // Dst = Sym(Args...); Dst = -1 for void
	irCallPtr
	irRet // return A (or -1)
	irJmp // goto T
	irBr  // if A <Cond> B goto T else goto F
)

type irInstr struct {
	Op     irOp
	Dst    int // value id or -1
	A, B   int
	UseImm bool
	Imm    int64
	F      float64
	Op2    string
	Cond   isa.Cond
	FCmp   bool // compare in the float domain
	Sym    *symbol
	Size   int
	Off    int64
	Idx    int
	Args   []int
	T, Fb  *irBlock
	Line   int
	// paramDone marks irParam instructions already emitted by the entry
	// batch move.
	paramDone bool
}

type irBlock struct {
	id  int
	ins []irInstr
}

func (b *irBlock) terminated() bool {
	if len(b.ins) == 0 {
		return false
	}
	switch b.ins[len(b.ins)-1].Op {
	case irJmp, irBr, irRet:
		return true
	}
	return false
}

type irFunc struct {
	name      string
	decl      *FuncDecl
	blocks    []*irBlock
	nvals     int
	class     []vclass
	params    []*symbol
	frameSize int64
}

func (f *irFunc) newVal(c vclass) int {
	f.class = append(f.class, c)
	f.nvals++
	return f.nvals - 1
}

func (f *irFunc) newBlock() *irBlock {
	b := &irBlock{id: len(f.blocks)}
	f.blocks = append(f.blocks, b)
	return b
}

// String renders the IR for debugging.
func (f *irFunc) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (frame %d):\n", f.name, f.frameSize)
	for _, b := range f.blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.id)
		for _, in := range b.ins {
			fmt.Fprintf(&sb, "    %s\n", in)
		}
	}
	return sb.String()
}

func vname(v int) string {
	if v < 0 {
		return "_"
	}
	return fmt.Sprintf("v%d", v)
}

func (in irInstr) String() string {
	switch in.Op {
	case irConst:
		return fmt.Sprintf("%s = %d", vname(in.Dst), in.Imm)
	case irConstF:
		return fmt.Sprintf("%s = %g", vname(in.Dst), in.F)
	case irMov:
		return fmt.Sprintf("%s = %s", vname(in.Dst), vname(in.A))
	case irBin:
		if in.UseImm {
			return fmt.Sprintf("%s = %s %s %d", vname(in.Dst), vname(in.A), in.Op2, in.Imm)
		}
		return fmt.Sprintf("%s = %s %s %s", vname(in.Dst), vname(in.A), in.Op2, vname(in.B))
	case irNeg:
		return fmt.Sprintf("%s = -%s", vname(in.Dst), vname(in.A))
	case irNot:
		return fmt.Sprintf("%s = ~%s", vname(in.Dst), vname(in.A))
	case irSet:
		return fmt.Sprintf("%s = %s %v %s", vname(in.Dst), vname(in.A), in.Cond, vname(in.B))
	case irCvtIF:
		return fmt.Sprintf("%s = (double) %s", vname(in.Dst), vname(in.A))
	case irCvtFI:
		return fmt.Sprintf("%s = (long) %s", vname(in.Dst), vname(in.A))
	case irBitsFI:
		return fmt.Sprintf("%s = bits(%s)", vname(in.Dst), vname(in.A))
	case irLoad:
		return fmt.Sprintf("%s = load%d [%s+%d]", vname(in.Dst), in.Size, vname(in.A), in.Off)
	case irStore:
		return fmt.Sprintf("store%d [%s+%d] = %s", in.Size, vname(in.A), in.Off, vname(in.B))
	case irAddr:
		return fmt.Sprintf("%s = &%s", vname(in.Dst), in.Sym.name)
	case irParam:
		return fmt.Sprintf("%s = param%d", vname(in.Dst), in.Idx)
	case irCall:
		return fmt.Sprintf("%s = call %s%v", vname(in.Dst), in.Sym.name, in.Args)
	case irCallPtr:
		return fmt.Sprintf("%s = callptr %s%v", vname(in.Dst), vname(in.A), in.Args)
	case irRet:
		return fmt.Sprintf("ret %s", vname(in.A))
	case irJmp:
		return fmt.Sprintf("jmp b%d", in.T.id)
	case irBr:
		if in.UseImm {
			return fmt.Sprintf("br %s %v %d -> b%d b%d", vname(in.A), in.Cond, in.Imm, in.T.id, in.Fb.id)
		}
		return fmt.Sprintf("br %s %v %s -> b%d b%d", vname(in.A), in.Cond, vname(in.B), in.T.id, in.Fb.id)
	}
	return "?"
}
