package minc

import "fmt"

type parser struct {
	toks []token
	pos  int
	unit *Unit
}

// Parse parses one translation unit.
func Parse(src string) (*Unit, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks: toks,
		unit: &Unit{
			Structs:  make(map[string]*Type),
			Typedefs: make(map[string]*Type),
		},
	}
	for !p.at(tokEOF, "") {
		if err := p.topDecl(); err != nil {
			return nil, err
		}
	}
	return p.unit, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, errAt(t.line, t.col, "expected %q, got %q", want, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) errHere(format string, args ...any) error {
	t := p.cur()
	return errAt(t.line, t.col, format, args...)
}

// atTypeStart reports whether the current token can begin a type.
func (p *parser) atTypeStart() bool {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "long", "int", "double", "void", "struct", "const":
			return true
		}
		return false
	}
	if t.kind == tokIdent {
		_, ok := p.unit.Typedefs[t.text]
		return ok
	}
	return false
}

// parseBaseType parses a type specifier without declarator stars.
func (p *parser) parseBaseType() (*Type, error) {
	p.accept(tokKeyword, "const")
	t := p.cur()
	switch {
	case p.accept(tokKeyword, "long"), p.accept(tokKeyword, "int"):
		return typeLong, nil
	case p.accept(tokKeyword, "double"):
		return typeDouble, nil
	case p.accept(tokKeyword, "void"):
		return typeVoid, nil
	case p.accept(tokKeyword, "struct"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		st, ok := p.unit.Structs[name.text]
		if !ok {
			// Forward reference: create a placeholder filled by a later
			// definition.
			st = &Type{Kind: TStruct, StructName: name.text}
			p.unit.Structs[name.text] = st
		}
		return st, nil
	case t.kind == tokIdent:
		if td, ok := p.unit.Typedefs[t.text]; ok {
			p.pos++
			return td, nil
		}
	}
	return nil, p.errHere("expected type, got %q", t)
}

// parseStars wraps t in pointer types for each '*'.
func (p *parser) parseStars(t *Type) *Type {
	for p.accept(tokPunct, "*") {
		p.accept(tokKeyword, "const")
		t = ptrTo(t)
	}
	return t
}

// parseType parses a full type usable in casts and sizeof.
func (p *parser) parseType() (*Type, error) {
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	return p.parseStars(base), nil
}

// declarator parses `ident`, `ident[N]`, `ident[]` or `(*ident)(params)`
// given the pointer-decorated base type.
func (p *parser) declarator(base *Type) (string, *Type, error) {
	if p.at(tokPunct, "(") && p.peek().kind == tokPunct && p.peek().text == "*" {
		// Function pointer: (*name)(param-types)
		p.pos += 2
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return "", nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return "", nil, err
		}
		ft, err := p.funcParamsType(base)
		if err != nil {
			return "", nil, err
		}
		return name.text, ptrTo(ft), nil
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return "", nil, err
	}
	t := base
	// Array suffixes, innermost last.
	var lens []int
	for p.accept(tokPunct, "[") {
		if p.accept(tokPunct, "]") {
			lens = append(lens, -1)
			continue
		}
		n, err := p.expect(tokInt, "")
		if err != nil {
			return "", nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return "", nil, err
		}
		lens = append(lens, int(n.ival))
	}
	for i := len(lens) - 1; i >= 0; i-- {
		t = &Type{Kind: TArray, Elem: t, Len: lens[i]}
	}
	return name.text, t, nil
}

// funcParamsType parses "(type, type, ...)" into a function type.
func (p *parser) funcParamsType(ret *Type) (*Type, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	ft := &Type{Kind: TFunc, Ret: ret}
	if p.accept(tokPunct, ")") {
		return ft, nil
	}
	if p.at(tokKeyword, "void") && p.peek().text == ")" {
		p.pos += 2
		return ft, nil
	}
	for {
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		// Optional parameter name in prototypes.
		if p.at(tokIdent, "") {
			p.pos++
		}
		ft.Params = append(ft.Params, pt)
		if p.accept(tokPunct, ")") {
			return ft, nil
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) topDecl() error {
	line := p.cur().line
	if p.accept(tokKeyword, "typedef") {
		base, err := p.parseType()
		if err != nil {
			return err
		}
		name, typ, err := p.declarator(base)
		if err != nil {
			return err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return err
		}
		p.unit.Typedefs[name] = typ
		return nil
	}

	if p.at(tokKeyword, "struct") && p.peek().kind == tokIdent {
		// Could be a struct definition, a forward declaration, or a
		// declaration using the type.
		save := p.pos
		p.pos++ // struct
		name := p.cur().text
		p.pos++ // ident
		if p.accept(tokPunct, "{") {
			return p.structDef(name)
		}
		if p.accept(tokPunct, ";") {
			// Forward declaration: usable behind pointers until defined.
			if _, ok := p.unit.Structs[name]; !ok {
				p.unit.Structs[name] = &Type{Kind: TStruct, StructName: name}
			}
			return nil
		}
		p.pos = save
	}

	extern := p.accept(tokKeyword, "extern")
	p.accept(tokKeyword, "static")
	base, err := p.parseType()
	if err != nil {
		return err
	}
	name, typ, err := p.declarator(base)
	if err != nil {
		return err
	}

	if p.at(tokPunct, "(") && !typ.isFuncPtr() {
		return p.funcDecl(name, typ, extern, line)
	}

	// Global variable(s).
	for {
		g := &Global{Name: name, Type: typ, Line: line}
		if p.accept(tokPunct, "=") {
			iv, err := p.initVal()
			if err != nil {
				return err
			}
			g.Init = iv
		}
		if !extern {
			p.unit.Globals = append(p.unit.Globals, g)
		}
		if p.accept(tokPunct, ";") {
			return nil
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return err
		}
		name, typ, err = p.declarator(base)
		if err != nil {
			return err
		}
	}
}

func (p *parser) structDef(name string) error {
	st, ok := p.unit.Structs[name]
	if ok && len(st.Fields) > 0 {
		return p.errHere("struct %s redefined", name)
	}
	if !ok {
		st = &Type{Kind: TStruct, StructName: name}
		p.unit.Structs[name] = st
	}
	var fields []Field
	for !p.accept(tokPunct, "}") {
		base, err := p.parseType()
		if err != nil {
			return err
		}
		for {
			fname, ftyp, err := p.declarator(base)
			if err != nil {
				return err
			}
			fields = append(fields, Field{Name: fname, Type: ftyp})
			if p.accept(tokPunct, ";") {
				break
			}
			if _, err := p.expect(tokPunct, ","); err != nil {
				return err
			}
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	st.Fields = layoutStruct(fields)
	return nil
}

func (p *parser) funcDecl(name string, ret *Type, extern bool, line int) error {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return err
	}
	fd := &FuncDecl{Name: name, Ret: ret, Line: line}
	if !p.accept(tokPunct, ")") {
		if p.at(tokKeyword, "void") && p.peek().text == ")" {
			p.pos += 2
		} else {
			for {
				base, err := p.parseType()
				if err != nil {
					return err
				}
				pname, ptyp, err := p.declarator(base)
				if err != nil {
					return err
				}
				if ptyp.Kind == TArray {
					ptyp = ptrTo(ptyp.Elem) // arrays decay in parameters
				}
				fd.Params = append(fd.Params, Param{Name: pname, Type: ptyp})
				if p.accept(tokPunct, ")") {
					break
				}
				if _, err := p.expect(tokPunct, ","); err != nil {
					return err
				}
			}
		}
	}
	if p.accept(tokPunct, ";") {
		p.unit.Externs = append(p.unit.Externs, fd)
		return nil
	}
	if extern {
		return p.errHere("extern function %s cannot have a body", name)
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	fd.Body = body
	p.unit.Funcs = append(p.unit.Funcs, fd)
	return nil
}

func (p *parser) initVal() (*InitVal, error) {
	line := p.cur().line
	if p.accept(tokPunct, "{") {
		iv := &InitVal{Line: line}
		if p.accept(tokPunct, "}") {
			return iv, nil
		}
		for {
			sub, err := p.initVal()
			if err != nil {
				return nil, err
			}
			iv.List = append(iv.List, sub)
			if p.accept(tokPunct, "}") {
				return iv, nil
			}
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
	}
	e, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	return &InitVal{Expr: e, Line: line}, nil
}

// --- statements ---

func (p *parser) block() (*Stmt, error) {
	line := p.cur().line
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	st := &Stmt{Kind: StBlock, Line: line}
	for !p.accept(tokPunct, "}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		st.List = append(st.List, s)
	}
	return st, nil
}

func (p *parser) stmt() (*Stmt, error) {
	t := p.cur()
	switch {
	case p.at(tokPunct, "{"):
		return p.block()

	case p.atTypeStart():
		return p.declStmt(true)

	case p.accept(tokKeyword, "if"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		st := &Stmt{Kind: StIf, Line: t.line, CondE: cond, Then: then}
		if p.accept(tokKeyword, "else") {
			els, err := p.stmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil

	case p.accept(tokKeyword, "while"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: StWhile, Line: t.line, CondE: cond, Body: body}, nil

	case p.accept(tokKeyword, "for"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		st := &Stmt{Kind: StFor, Line: t.line}
		if !p.accept(tokPunct, ";") {
			if p.atTypeStart() {
				init, err := p.declStmt(true)
				if err != nil {
					return nil, err
				}
				st.Init = init
			} else {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokPunct, ";"); err != nil {
					return nil, err
				}
				st.Init = &Stmt{Kind: StExpr, Line: t.line, X: e}
			}
		}
		if !p.accept(tokPunct, ";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.CondE = e
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(tokPunct, ")") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Post = &Stmt{Kind: StExpr, Line: t.line, X: e}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil

	case p.accept(tokKeyword, "return"):
		st := &Stmt{Kind: StReturn, Line: t.line}
		if !p.accept(tokPunct, ";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.X = e
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		return st, nil

	case p.accept(tokKeyword, "break"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StBreak, Line: t.line}, nil

	case p.accept(tokKeyword, "continue"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StContinue, Line: t.line}, nil

	case p.accept(tokPunct, ";"):
		return &Stmt{Kind: StBlock, Line: t.line}, nil
	}

	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &Stmt{Kind: StExpr, Line: t.line, X: e}, nil
}

// declStmt parses a local declaration; wrapped in a block when several
// declarators appear.
func (p *parser) declStmt(wantSemi bool) (*Stmt, error) {
	line := p.cur().line
	base, err := p.parseType()
	if err != nil {
		return nil, err
	}
	var decls []*Stmt
	for {
		name, typ, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		d := &Stmt{Kind: StDecl, Line: line, DeclName: name, DeclType: typ}
		if p.accept(tokPunct, "=") {
			e, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			d.DeclInit = e
		}
		decls = append(decls, d)
		if p.accept(tokPunct, ";") {
			break
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, err
		}
	}
	_ = wantSemi
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &Stmt{Kind: StBlock, Line: line, List: decls}, nil
}

// --- expressions (precedence climbing) ---

func (p *parser) expr() (*Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (*Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^=":
			p.pos++
			rhs, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: ExAssign, Line: t.line, Op: t.text, X: lhs, Y: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *parser) condExpr() (*Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.at(tokPunct, "?") {
		t := p.cur()
		p.pos++
		a, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		b, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExCond, Line: t.line, X: c, Y: a, Z: b}, nil
	}
	return c, nil
}

// binary operator precedence table (higher binds tighter).
var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binExpr(minPrec int) (*Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Expr{Kind: ExBinary, Line: t.line, Op: t.text, X: lhs, Y: rhs}
	}
}

func (p *parser) unaryExpr() (*Expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~", "&", "*":
			p.pos++
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: ExUnary, Line: t.line, Op: t.text, X: x}, nil
		case "++", "--":
			p.pos++
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: ExIncDec, Line: t.line, Op: t.text, X: x}, nil
		case "(":
			// Cast?
			save := p.pos
			p.pos++
			if p.atTypeStart() {
				typ, err := p.parseType()
				if err == nil && p.accept(tokPunct, ")") {
					x, err := p.unaryExpr()
					if err != nil {
						return nil, err
					}
					return &Expr{Kind: ExCast, Line: t.line, castTo: typ, X: x}, nil
				}
			}
			p.pos = save
		}
	}
	if t.kind == tokKeyword && t.text == "sizeof" {
		p.pos++
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &Expr{Kind: ExSizeof, Line: t.line, sizeofT: typ}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (*Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.accept(tokPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			x = &Expr{Kind: ExIndex, Line: t.line, X: x, Y: idx}
		case p.accept(tokPunct, "("):
			call := &Expr{Kind: ExCall, Line: t.line, X: x}
			if !p.accept(tokPunct, ")") {
				for {
					a, err := p.assignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(tokPunct, ")") {
						break
					}
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			x = call
		case p.accept(tokPunct, "."):
			f, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			x = &Expr{Kind: ExMember, Line: t.line, X: x, Name: f.text}
		case p.accept(tokPunct, "->"):
			f, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			x = &Expr{Kind: ExMember, Line: t.line, X: x, Name: f.text, Arrow: true}
		case p.at(tokPunct, "++"), p.at(tokPunct, "--"):
			op := p.cur().text
			p.pos++
			x = &Expr{Kind: ExIncDec, Line: t.line, Op: op, X: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (*Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.pos++
		return &Expr{Kind: ExIntLit, Line: t.line, IVal: t.ival}, nil
	case tokFloat:
		p.pos++
		return &Expr{Kind: ExFloatLit, Line: t.line, FVal: t.fval}, nil
	case tokIdent:
		p.pos++
		return &Expr{Kind: ExIdent, Line: t.line, Name: t.text}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errHere("expected expression, got %q", t)
}
