package minc

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// The back end: liveness analysis, linear-scan register allocation with
// caller/callee-saved awareness, and VX64 code emission.

// Register pools. r0/f0 are the return registers, r8/r9 and f8/f9 are
// reserved scratch, r15 is SP.
var (
	intCallerPool   = []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7}
	intCalleePool   = []isa.Reg{isa.R10, isa.R11, isa.R12, isa.R13, isa.R14}
	floatCallerPool = []isa.Reg{1, 2, 3, 4, 5, 6, 7}
	floatCalleePool = []isa.Reg{10, 11, 12, 13, 14, 15}
)

const (
	intScratch1   = isa.R8
	intScratch2   = isa.R9
	floatScratch1 = isa.Reg(8)
	floatScratch2 = isa.Reg(9)
)

// loc is a value's assigned location.
type loc struct {
	inReg bool
	reg   isa.Reg
	off   int64 // frame slot offset when !inReg
}

// irUses returns the value ids an instruction reads.
func irUses(in *irInstr) []int {
	var out []int
	add := func(v int) {
		if v >= 0 {
			out = append(out, v)
		}
	}
	switch in.Op {
	case irConst, irConstF, irAddr, irParam:
	case irMov, irNeg, irNot, irCvtIF, irCvtFI, irBitsFI, irLoad:
		add(in.A)
	case irBin, irSet:
		add(in.A)
		if !in.UseImm {
			add(in.B)
		}
	case irStore:
		add(in.A)
		add(in.B)
	case irCall:
		for _, a := range in.Args {
			add(a)
		}
	case irCallPtr:
		add(in.A)
		for _, a := range in.Args {
			add(a)
		}
	case irRet:
		add(in.A)
	case irJmp:
	case irBr:
		add(in.A)
		if !in.UseImm {
			add(in.B)
		}
	}
	return out
}

// irDef returns the value id an instruction writes, or -1.
func irDef(in *irInstr) int {
	switch in.Op {
	case irConst, irConstF, irMov, irBin, irNeg, irNot, irSet, irCvtIF,
		irCvtFI, irBitsFI, irLoad, irAddr, irParam, irCall, irCallPtr:
		return in.Dst
	}
	return -1
}

type interval struct {
	val        int
	start, end int
	crossCall  bool
	assigned   bool
	l          loc
}

// emitter generates code for one function.
type emitter struct {
	f        *irFunc
	addrs    *symAddrs
	ins      []isa.Instr
	loc      []loc
	spillOff int64

	usedCalleeInt   map[isa.Reg]bool
	usedCalleeFloat map[isa.Reg]bool
	frameTotal      int64
	fsaveOff        map[isa.Reg]int64

	blockOff   []int // instruction index where each block starts
	branchFix  []branchFixup
	epilogueAt int

	lines   []int // source line per emitted instruction (parallel to ins)
	curLine int   // line of the IR instruction being lowered; 0 in pro/epilogue
}

type branchFixup struct {
	insIdx  int
	blockID int
}

// symAddrs resolves global and function addresses at emission time.
type symAddrs struct {
	global map[string]uint64
	fn     map[string]uint64
}

func (sa *symAddrs) of(s *symbol) (uint64, error) {
	switch s.kind {
	case symGlobal:
		a, ok := sa.global[s.name]
		if !ok {
			return 0, fmt.Errorf("minc: unresolved global %s", s.name)
		}
		return a, nil
	case symFunc, symExtern:
		a, ok := sa.fn[s.name]
		if !ok {
			return 0, fmt.Errorf("minc: unresolved function %s", s.name)
		}
		return a, nil
	case symLocal, symParam:
		return 0, fmt.Errorf("minc: %s has no absolute address", s.name)
	}
	return 0, fmt.Errorf("minc: bad symbol %s", s.name)
}

// liveness computes live-out sets per block.
func liveness(f *irFunc) []map[int]bool {
	n := len(f.blocks)
	liveIn := make([]map[int]bool, n)
	liveOut := make([]map[int]bool, n)
	for i := range liveIn {
		liveIn[i] = map[int]bool{}
		liveOut[i] = map[int]bool{}
	}
	succs := func(b *irBlock) []*irBlock {
		if len(b.ins) == 0 {
			return nil
		}
		last := &b.ins[len(b.ins)-1]
		switch last.Op {
		case irJmp:
			return []*irBlock{last.T}
		case irBr:
			return []*irBlock{last.T, last.Fb}
		}
		return nil
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.blocks[i]
			out := map[int]bool{}
			for _, s := range succs(b) {
				for v := range liveIn[s.id] {
					out[v] = true
				}
			}
			in := map[int]bool{}
			for v := range out {
				in[v] = true
			}
			for j := len(b.ins) - 1; j >= 0; j-- {
				if d := irDef(&b.ins[j]); d >= 0 {
					delete(in, d)
				}
				for _, u := range irUses(&b.ins[j]) {
					in[u] = true
				}
			}
			if !sameSet(out, liveOut[i]) || !sameSet(in, liveIn[i]) {
				changed = true
			}
			liveOut[i] = out
			liveIn[i] = in
		}
	}
	return liveOut
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// buildIntervals computes one live interval per value over the linearized
// instruction order, plus call-crossing flags.
func buildIntervals(f *irFunc) []*interval {
	liveOut := liveness(f)
	iv := make([]*interval, f.nvals)
	get := func(v int) *interval {
		if iv[v] == nil {
			iv[v] = &interval{val: v, start: 1 << 30, end: -1}
		}
		return iv[v]
	}
	extend := func(v, pos int) {
		it := get(v)
		if pos < it.start {
			it.start = pos
		}
		if pos > it.end {
			it.end = pos
		}
	}
	pos := 0
	var callPos []int
	for _, b := range f.blocks {
		blockStart := pos
		for j := range b.ins {
			in := &b.ins[j]
			if d := irDef(in); d >= 0 {
				extend(d, pos)
			}
			for _, u := range irUses(in) {
				extend(u, pos)
			}
			if in.Op == irCall || in.Op == irCallPtr {
				callPos = append(callPos, pos)
			}
			pos++
		}
		// Values live out of the block span the whole block tail; values
		// live into it span from its head. Conservatively cover the whole
		// block for anything in liveOut (loop-carried values).
		for v := range liveOut[b.id] {
			extend(v, blockStart)
			extend(v, pos-1)
		}
	}
	var out []*interval
	for _, it := range iv {
		if it == nil || it.end < 0 {
			continue
		}
		for _, c := range callPos {
			if it.start < c && c < it.end {
				it.crossCall = true
				break
			}
		}
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out
}

// allocate runs linear scan for one register class.
func (em *emitter) allocate(ivs []*interval, class vclass) {
	caller, callee := intCallerPool, intCalleePool
	if class == classFloat {
		caller, callee = floatCallerPool, floatCalleePool
	}
	free := map[isa.Reg]bool{}
	for _, r := range caller {
		free[r] = true
	}
	for _, r := range callee {
		free[r] = true
	}
	isCallee := map[isa.Reg]bool{}
	for _, r := range callee {
		isCallee[r] = true
	}
	var active []*interval
	for _, it := range ivs {
		if em.f.class[it.val] != class {
			continue
		}
		// Expire finished intervals.
		na := active[:0]
		for _, a := range active {
			if a.end < it.start {
				free[a.l.reg] = true
			} else {
				na = append(na, a)
			}
		}
		active = na
		pick := func(pool []isa.Reg) (isa.Reg, bool) {
			for _, r := range pool {
				if free[r] {
					return r, true
				}
			}
			return 0, false
		}
		var r isa.Reg
		var ok bool
		if it.crossCall {
			r, ok = pick(callee)
		} else {
			if r, ok = pick(caller); !ok {
				r, ok = pick(callee)
			}
		}
		if !ok {
			// Spill to a frame slot.
			em.loc[it.val] = loc{off: em.spillOff}
			em.spillOff += 8
			it.assigned = true
			continue
		}
		free[r] = false
		if isCallee[r] {
			if class == classInt {
				em.usedCalleeInt[r] = true
			} else {
				em.usedCalleeFloat[r] = true
			}
		}
		em.loc[it.val] = loc{inReg: true, reg: r}
		it.assigned = true
		active = append(active, it)
	}
}

// emitFunc generates the function's instructions with resolved absolute
// addresses, assuming the function starts at base. The third result maps
// each emitted instruction to the source line of the IR statement it was
// lowered from (0 for prologue/epilogue scaffolding).
func emitFunc(f *irFunc, base uint64, addrs *symAddrs) ([]isa.Instr, []byte, []int, error) {
	em := &emitter{
		f:               f,
		addrs:           addrs,
		loc:             make([]loc, f.nvals),
		spillOff:        f.frameSize,
		usedCalleeInt:   map[isa.Reg]bool{},
		usedCalleeFloat: map[isa.Reg]bool{},
		fsaveOff:        map[isa.Reg]int64{},
	}
	// emitFunc runs twice per link (size probe, then final); clear
	// per-emission markers.
	for _, b := range f.blocks {
		for j := range b.ins {
			b.ins[j].paramDone = false
		}
	}

	ivs := buildIntervals(f)
	em.allocate(ivs, classInt)
	em.allocate(ivs, classFloat)

	// Frame: locals | spills | float callee-saved save area.
	em.frameTotal = em.spillOff
	// Reserve save slots for callee-saved float registers (discovered
	// during allocation; integer callee-saved use PUSH/POP).
	fsave := sortedRegs(em.usedCalleeFloat)
	for _, r := range fsave {
		em.fsaveOff[r] = em.frameTotal
		em.frameTotal += 8
	}

	// Prologue.
	ipush := sortedRegs(em.usedCalleeInt)
	for _, r := range ipush {
		em.push(isa.MakeR(isa.PUSH, r))
	}
	if em.frameTotal > 0 {
		em.push(isa.MakeRI(isa.SUBI, isa.SP, em.frameTotal))
	}
	for _, r := range fsave {
		em.push(isa.MakeMR(isa.FSTORE, isa.BaseDisp(isa.SP, int32(em.fsaveOff[r])), r))
	}

	// Body.
	em.blockOff = make([]int, len(f.blocks))
	for _, b := range f.blocks {
		em.blockOff[b.id] = len(em.ins)
		for j := range b.ins {
			em.curLine = b.ins[j].Line
			if err := em.instr(b, j); err != nil {
				return nil, nil, nil, err
			}
		}
	}

	// Epilogue.
	em.curLine = 0
	em.epilogueAt = len(em.ins)
	for i := len(fsave) - 1; i >= 0; i-- {
		r := fsave[i]
		em.push(isa.MakeRM(isa.FLOAD, r, isa.BaseDisp(isa.SP, int32(em.fsaveOff[r]))))
	}
	if em.frameTotal > 0 {
		em.push(isa.MakeRI(isa.ADDI, isa.SP, em.frameTotal))
	}
	for i := len(ipush) - 1; i >= 0; i-- {
		em.push(isa.MakeR(isa.POP, ipush[i]))
	}
	em.push(isa.MakeNone(isa.RET))

	ins, code, err := em.finish(base)
	if err != nil {
		return nil, nil, nil, err
	}
	return ins, code, em.lines, nil
}

func sortedRegs(m map[isa.Reg]bool) []isa.Reg {
	var out []isa.Reg
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (em *emitter) push(ins isa.Instr) {
	em.ins = append(em.ins, ins)
	em.lines = append(em.lines, em.curLine)
}

// fixupBranch records a branch whose target block offset is patched later.
func (em *emitter) pushBranch(ins isa.Instr, blockID int) {
	em.branchFix = append(em.branchFix, branchFixup{insIdx: len(em.ins), blockID: blockID})
	em.ins = append(em.ins, ins)
	em.lines = append(em.lines, em.curLine)
}

const epilogueBlock = -2

// finish assigns addresses, patches branch targets, encodes.
func (em *emitter) finish(base uint64) ([]isa.Instr, []byte, error) {
	offs := make([]int, len(em.ins)+1)
	for i := range em.ins {
		n, err := isa.EncodedLen(em.ins[i])
		if err != nil {
			return nil, nil, fmt.Errorf("minc: emit %s: %v", em.f.name, err)
		}
		offs[i+1] = offs[i] + n
	}
	for _, fix := range em.branchFix {
		var targetIns int
		if fix.blockID == epilogueBlock {
			targetIns = em.epilogueAt
		} else {
			targetIns = em.blockOff[fix.blockID]
		}
		em.ins[fix.insIdx].Dst = isa.ImmOp(int64(base) + int64(offs[targetIns]))
	}
	var code []byte
	for i := range em.ins {
		em.ins[i].Addr = base + uint64(offs[i])
		var err error
		code, err = isa.AppendEncode(code, em.ins[i])
		if err != nil {
			return nil, nil, fmt.Errorf("minc: encode %s: %v", em.f.name, err)
		}
	}
	return em.ins, code, nil
}

// --- operand access helpers ---

// readVal ensures the value is in a register, using the given scratch when
// it lives in a frame slot.
func (em *emitter) readVal(v int, scratch isa.Reg) isa.Reg {
	l := em.loc[v]
	if l.inReg {
		return l.reg
	}
	cls := em.f.class[v]
	if cls == classFloat {
		em.push(isa.MakeRM(isa.FLOAD, scratch, isa.BaseDisp(isa.SP, int32(l.off))))
	} else {
		em.push(isa.MakeRM(isa.LOAD, scratch, isa.BaseDisp(isa.SP, int32(l.off))))
	}
	return scratch
}

// defReg returns the register to compute a value into; spillback writes it
// to the frame slot afterwards.
func (em *emitter) defReg(v int, scratch isa.Reg) isa.Reg {
	if em.loc[v].inReg {
		return em.loc[v].reg
	}
	return scratch
}

func (em *emitter) spillback(v int, r isa.Reg) {
	l := em.loc[v]
	if l.inReg {
		return
	}
	if em.f.class[v] == classFloat {
		em.push(isa.MakeMR(isa.FSTORE, isa.BaseDisp(isa.SP, int32(l.off)), r))
	} else {
		em.push(isa.MakeMR(isa.STORE, isa.BaseDisp(isa.SP, int32(l.off)), r))
	}
}

func scratchFor(cls vclass, which int) isa.Reg {
	if cls == classFloat {
		if which == 0 {
			return floatScratch1
		}
		return floatScratch2
	}
	if which == 0 {
		return intScratch1
	}
	return intScratch2
}
