package minc

// IR optimization passes (-O1, the default): copy propagation, constant
// folding, branch folding with unreachable-block elimination, and dead-IR
// removal. They operate on the non-SSA IR using a single-definition
// discipline: only values defined exactly once participate in propagation,
// which (together with the lowerer's def-before-use construction) makes
// the rewrites dominance-safe without building SSA.

import "repro/internal/isa"

// OptLevel selects the compiler optimization pipeline.
type OptLevel int

// Optimization levels.
const (
	O0 OptLevel = iota // straight lowering output
	O1                 // copy prop, const fold, branch fold, dead IR
)

func optimizeIR(f *irFunc, level OptLevel) {
	if level < O1 {
		return
	}
	for i := 0; i < 3; i++ {
		copyPropIR(f)
		constFoldIR(f)
		foldBranchesIR(f)
		removeUnreachableIR(f)
		deadIR(f)
	}
}

// defCounts returns, per value id, how many instructions define it.
func defCounts(f *irFunc) []int {
	counts := make([]int, f.nvals)
	for _, b := range f.blocks {
		for i := range b.ins {
			if d := irDef(&b.ins[i]); d >= 0 {
				counts[d]++
			}
		}
	}
	return counts
}

// copyPropIR replaces uses of single-def copies with their source.
func copyPropIR(f *irFunc) {
	counts := defCounts(f)
	alias := make([]int, f.nvals)
	for i := range alias {
		alias[i] = i
	}
	for _, b := range f.blocks {
		for i := range b.ins {
			in := &b.ins[i]
			if in.Op == irMov && in.Dst >= 0 && in.A >= 0 &&
				counts[in.Dst] == 1 && counts[in.A] == 1 &&
				f.class[in.Dst] == f.class[in.A] {
				alias[in.Dst] = in.A
			}
		}
	}
	// Resolve chains.
	resolve := func(v int) int {
		if v < 0 {
			return v
		}
		for alias[v] != v {
			v = alias[v]
		}
		return v
	}
	for _, b := range f.blocks {
		for i := range b.ins {
			for _, slot := range useSlots(&b.ins[i]) {
				*slot = resolve(*slot)
			}
		}
	}
}

// useSlots returns pointers to the value-id fields an instruction actually
// reads. Fields that are not uses for the given opcode (e.g. the A field
// of an irConst left over from folding) are excluded.
func useSlots(in *irInstr) []*int {
	var out []*int
	add := func(p *int) {
		if *p >= 0 {
			out = append(out, p)
		}
	}
	switch in.Op {
	case irConst, irConstF, irAddr, irParam, irJmp:
	case irMov, irNeg, irNot, irCvtIF, irCvtFI, irBitsFI, irLoad, irRet:
		add(&in.A)
	case irBin, irSet, irBr:
		add(&in.A)
		if !in.UseImm {
			add(&in.B)
		}
	case irStore:
		add(&in.A)
		add(&in.B)
	case irCall:
		for i := range in.Args {
			add(&in.Args[i])
		}
	case irCallPtr:
		add(&in.A)
		for i := range in.Args {
			add(&in.Args[i])
		}
	}
	return out
}

// constVal captures a known constant value of a single-def value.
type constVal struct {
	known bool
	isF   bool
	i     int64
	f     float64
}

func constants(f *irFunc) []constVal {
	counts := defCounts(f)
	consts := make([]constVal, f.nvals)
	for _, b := range f.blocks {
		for i := range b.ins {
			in := &b.ins[i]
			if in.Dst < 0 || counts[in.Dst] != 1 {
				continue
			}
			switch in.Op {
			case irConst:
				consts[in.Dst] = constVal{known: true, i: in.Imm, f: float64(in.Imm)}
			case irConstF:
				consts[in.Dst] = constVal{known: true, isF: true, f: in.F, i: int64(in.F)}
			}
		}
	}
	return consts
}

// constFoldIR folds operations over known constants and rewrites
// register-register operations with a constant right operand into
// immediate form.
func constFoldIR(f *irFunc) {
	consts := constants(f)
	counts := defCounts(f)
	// note records newly folded constants so chains fold in one pass
	// (blocks are visited in order and defs precede uses).
	note := func(in *irInstr) {
		if in.Dst >= 0 && counts[in.Dst] == 1 {
			switch in.Op {
			case irConst:
				consts[in.Dst] = constVal{known: true, i: in.Imm, f: float64(in.Imm)}
			case irConstF:
				consts[in.Dst] = constVal{known: true, isF: true, f: in.F, i: int64(in.F)}
			}
		}
	}
	for _, b := range f.blocks {
		for i := range b.ins {
			in := &b.ins[i]
			switch in.Op {
			case irBin:
				cls := f.class[in.Dst]
				a := lookupConst(consts, in.A)
				var bv constVal
				if in.UseImm {
					bv = constVal{known: true, i: in.Imm, f: float64(in.Imm)}
				} else {
					bv = lookupConst(consts, in.B)
				}
				if a.known && bv.known {
					if folded, ok := evalConstBin(in.Op2, cls, a, bv); ok {
						*in = folded1(in, folded)
						note(in)
						continue
					}
				}
				// Immediate form for integer ops.
				if cls == classInt && !in.UseImm && bv.known && !bv.isF {
					if in.Op2 != "/" && in.Op2 != "%" { // no imm division op
						in.UseImm = true
						in.Imm = bv.i
						in.B = -1
					}
				}
			case irSet:
				a := lookupConst(consts, in.A)
				var bv constVal
				if in.UseImm {
					bv = constVal{known: true, i: in.Imm}
				} else {
					bv = lookupConst(consts, in.B)
				}
				if a.known && bv.known && !in.FCmp {
					r := int64(0)
					if holdsConst(in.Cond, a.i, bv.i) {
						r = 1
					}
					*in = irInstr{Op: irConst, Dst: in.Dst, Imm: r, Line: in.Line}
					note(in)
					continue
				}
				if !in.FCmp && !in.UseImm && bv.known && !bv.isF {
					in.UseImm = true
					in.Imm = bv.i
					in.B = -1
				}
			case irNeg:
				if a := lookupConst(consts, in.A); a.known {
					if f.class[in.Dst] == classFloat {
						*in = irInstr{Op: irConstF, Dst: in.Dst, F: -a.f, Line: in.Line}
					} else {
						*in = irInstr{Op: irConst, Dst: in.Dst, Imm: -a.i, Line: in.Line}
					}
					note(in)
				}
			case irNot:
				if a := lookupConst(consts, in.A); a.known && !a.isF {
					*in = irInstr{Op: irConst, Dst: in.Dst, Imm: ^a.i, Line: in.Line}
					note(in)
				}
			case irCvtIF:
				if a := lookupConst(consts, in.A); a.known && !a.isF {
					*in = irInstr{Op: irConstF, Dst: in.Dst, F: float64(a.i), Line: in.Line}
					note(in)
				}
			case irCvtFI:
				if a := lookupConst(consts, in.A); a.known && a.isF {
					*in = irInstr{Op: irConst, Dst: in.Dst, Imm: int64(a.f), Line: in.Line}
					note(in)
				}
			case irBr:
				if !in.UseImm {
					if bv := lookupConst(consts, in.B); bv.known && !bv.isF && !in.FCmp {
						in.UseImm = true
						in.Imm = bv.i
						in.B = -1
					}
				}
			}
		}
	}
}

func lookupConst(consts []constVal, v int) constVal {
	if v < 0 || v >= len(consts) {
		return constVal{}
	}
	return consts[v]
}

func folded1(in *irInstr, nv irInstr) irInstr {
	nv.Dst = in.Dst
	nv.Line = in.Line
	return nv
}

// evalConstBin evaluates a binary operation over constants; division by
// zero stays a runtime operation (it must fault at runtime, not compile
// time).
func evalConstBin(op string, cls vclass, a, b constVal) (irInstr, bool) {
	if cls == classFloat {
		var r float64
		switch op {
		case "+":
			r = a.f + b.f
		case "-":
			r = a.f - b.f
		case "*":
			r = a.f * b.f
		case "/":
			r = a.f / b.f
		default:
			return irInstr{}, false
		}
		return irInstr{Op: irConstF, F: r}, true
	}
	var r int64
	switch op {
	case "+":
		r = a.i + b.i
	case "-":
		r = a.i - b.i
	case "*":
		r = a.i * b.i
	case "/":
		if b.i == 0 || (a.i == -1<<63 && b.i == -1) {
			return irInstr{}, false
		}
		r = a.i / b.i
	case "%":
		if b.i == 0 || (a.i == -1<<63 && b.i == -1) {
			return irInstr{}, false
		}
		r = a.i % b.i
	case "&":
		r = a.i & b.i
	case "|":
		r = a.i | b.i
	case "^":
		r = a.i ^ b.i
	case "<<":
		r = a.i << (uint64(b.i) & 63)
	case ">>":
		r = a.i >> (uint64(b.i) & 63)
	default:
		return irInstr{}, false
	}
	return irInstr{Op: irConst, Imm: r}, true
}

func holdsConst(cc isa.Cond, a, b int64) bool {
	switch cc {
	case isa.CondEQ:
		return a == b
	case isa.CondNE:
		return a != b
	case isa.CondLT:
		return a < b
	case isa.CondLE:
		return a <= b
	case isa.CondGT:
		return a > b
	case isa.CondGE:
		return a >= b
	case isa.CondB:
		return uint64(a) < uint64(b)
	case isa.CondBE:
		return uint64(a) <= uint64(b)
	case isa.CondA:
		return uint64(a) > uint64(b)
	case isa.CondAE:
		return uint64(a) >= uint64(b)
	}
	return false
}

// foldBranchesIR turns branches with constant outcomes into jumps.
func foldBranchesIR(f *irFunc) {
	consts := constants(f)
	for _, b := range f.blocks {
		if len(b.ins) == 0 {
			continue
		}
		in := &b.ins[len(b.ins)-1]
		if in.Op != irBr || in.FCmp {
			continue
		}
		a := lookupConst(consts, in.A)
		var bv constVal
		if in.UseImm {
			bv = constVal{known: true, i: in.Imm}
		} else {
			bv = lookupConst(consts, in.B)
		}
		if !a.known || !bv.known || a.isF || bv.isF {
			continue
		}
		t := in.Fb
		if holdsConst(in.Cond, a.i, bv.i) {
			t = in.T
		}
		*in = irInstr{Op: irJmp, T: t, Line: in.Line}
	}
}

// removeUnreachableIR drops blocks no path from the entry reaches.
func removeUnreachableIR(f *irFunc) {
	if len(f.blocks) == 0 {
		return
	}
	reach := make(map[*irBlock]bool)
	var walk func(b *irBlock)
	walk = func(b *irBlock) {
		if reach[b] {
			return
		}
		reach[b] = true
		if len(b.ins) == 0 {
			return
		}
		last := &b.ins[len(b.ins)-1]
		switch last.Op {
		case irJmp:
			walk(last.T)
		case irBr:
			walk(last.T)
			walk(last.Fb)
		}
	}
	walk(f.blocks[0])
	var out []*irBlock
	for _, b := range f.blocks {
		if reach[b] {
			b.id = len(out)
			out = append(out, b)
		}
	}
	f.blocks = out
}

// deadIR removes side-effect-free instructions whose results are unused.
func deadIR(f *irFunc) {
	for {
		uses := make([]int, f.nvals)
		for _, b := range f.blocks {
			for i := range b.ins {
				for _, slot := range useSlots(&b.ins[i]) {
					uses[*slot]++
				}
			}
		}
		changed := false
		for _, b := range f.blocks {
			out := b.ins[:0]
			for i := range b.ins {
				in := b.ins[i]
				if d := irDef(&in); d >= 0 && uses[d] == 0 && pureIR(&in) {
					changed = true
					continue
				}
				out = append(out, in)
			}
			b.ins = out
		}
		if !changed {
			return
		}
	}
}

// pureIR reports whether removing the instruction is observable (loads are
// considered pure in the IR model; faults from division are not).
func pureIR(in *irInstr) bool {
	switch in.Op {
	case irConst, irConstF, irMov, irNeg, irNot, irSet, irCvtIF, irCvtFI,
		irBitsFI, irAddr, irLoad:
		return true
	case irBin:
		return in.Op2 != "/" && in.Op2 != "%" // keep potential faults
	}
	return false
}
