package minc_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/minc"
	"repro/internal/vm"
)

// O0 and O1 must agree on every program; O1 must not be slower.
func TestOptLevelsAgree(t *testing.T) {
	srcs := []string{
		`long f(long a, long b) {
    long x = 2 * 3 + a;
    long y = x << 1;
    if (10 > 3) { y += 100; } else { y -= 100; }
    return y * b - (7 & 5) + (1 ? 4 : 9);
}`,
		`double g(double a) {
    double k = 2.0 * 4.0;
    double r = a;
    for (long i = 0; i < 3; i++) { r = r * k + 1.0; }
    return r;
}`,
		`long h(long n) {
    long s = 0;
    long step = 1 + 1;
    for (long i = 0; i < n; i += step) { s += i; }
    return s;
}`,
	}
	for _, src := range srcs {
		m0 := vm.MustNew()
		p0, err := minc.CompileWithLevel(src, minc.O0)
		if err != nil {
			t.Fatal(err)
		}
		l0, err := p0.Link(m0, nil)
		if err != nil {
			t.Fatal(err)
		}
		m1 := vm.MustNew()
		p1, err := minc.CompileWithLevel(src, minc.O1)
		if err != nil {
			t.Fatal(err)
		}
		l1, err := p1.Link(m1, nil)
		if err != nil {
			t.Fatal(err)
		}
		name := p0.Unit.Funcs[0].Name
		a0, _ := l0.FuncAddr(name)
		a1, _ := l1.FuncAddr(name)
		r := rand.New(rand.NewSource(3))
		for trial := 0; trial < 30; trial++ {
			arg := uint64(r.Intn(50))
			var w0, w1 uint64
			var err0, err1 error
			if name == "g" {
				f0, e := m0.CallFloat(a0, nil, []float64{float64(arg) * 0.5})
				err0 = e
				f1, e := m1.CallFloat(a1, nil, []float64{float64(arg) * 0.5})
				err1 = e
				if f0 != f1 {
					t.Fatalf("%s(%d): O0 %g, O1 %g", name, arg, f0, f1)
				}
				continue
			}
			w0, err0 = m0.Call(a0, arg, arg+3)
			w1, err1 = m1.Call(a1, arg, arg+3)
			if err0 != nil || err1 != nil {
				t.Fatalf("%s: %v / %v", name, err0, err1)
			}
			if w0 != w1 {
				t.Fatalf("%s(%d): O0 %d, O1 %d", name, arg, w0, w1)
			}
		}
		if l1.Sizes[name] > l0.Sizes[name] {
			t.Errorf("%s: O1 code (%dB) larger than O0 (%dB)", name, l1.Sizes[name], l0.Sizes[name])
		}
	}
}

func TestConstantBranchFolded(t *testing.T) {
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
long f(long a) {
    if (2 + 2 == 4) { return a * 3; }
    return a * 1000;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := l.Disassemble("f")
	if err != nil {
		t.Fatal(err)
	}
	// The dead arm (imul by 1000) must be gone.
	if strings.Contains(dis, "1000") {
		t.Errorf("dead branch arm survived:\n%s", dis)
	}
	a, _ := l.FuncAddr("f")
	if got, err := m.Call(a, 14); err != nil || got != 42 {
		t.Errorf("f(14) = %d, %v", got, err)
	}
}

func TestConstantExprFolded(t *testing.T) {
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
long f(void) { return (3 * 7 + 100 / 4 - 4) % 1000 << 1; }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	dis, _ := l.Disassemble("f")
	if !strings.Contains(dis, " 84") ||
		strings.Contains(dis, "irem") || strings.Contains(dis, "shli") ||
		strings.Contains(dis, "imul") {
		t.Errorf("constant not fully folded (want 84 as immediate):\n%s", dis)
	}
}

func TestDivideByZeroNotFoldedAway(t *testing.T) {
	// A constant division by zero must still fault at runtime, not be
	// removed or folded at compile time.
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
long f(long a) {
    long zero = 0;
    long x = a / zero;
    return 1;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := l.FuncAddr("f")
	if _, err := m.Call(a, 10); err == nil {
		t.Error("division by zero did not fault")
	}
}

func TestImmediateFormsUsed(t *testing.T) {
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
long f(long a) {
    long k = 5;
    return a + k;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	dis, _ := l.Disassemble("f")
	if !strings.Contains(dis, "addi") {
		t.Errorf("constant operand not folded to immediate form:\n%s", dis)
	}
}

func TestUnreachableBlocksRemoved(t *testing.T) {
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
long f(long a) {
    if (0) { return a * 777; }
    while (1) { return a + 1; }
    return a * 888;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	dis, _ := l.Disassemble("f")
	if strings.Contains(dis, "777") || strings.Contains(dis, "888") {
		t.Errorf("unreachable code survived:\n%s", dis)
	}
	a, _ := l.FuncAddr("f")
	if got, err := m.Call(a, 41); err != nil || got != 42 {
		t.Errorf("f(41) = %d, %v", got, err)
	}
}
