package minc_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/minc"
	"repro/internal/vm"
)

// compile builds a machine and links src into it.
func compile(t *testing.T, src string) (*vm.Machine, *minc.Linked) {
	t.Helper()
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, src, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m, l
}

func callI(t *testing.T, m *vm.Machine, l *minc.Linked, fn string, args ...uint64) int64 {
	t.Helper()
	a, err := l.FuncAddr(fn)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(a, args...)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	return int64(got)
}

func callF(t *testing.T, m *vm.Machine, l *minc.Linked, fn string, intArgs []uint64, fArgs []float64) float64 {
	t.Helper()
	a, err := l.FuncAddr(fn)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.CallFloat(a, intArgs, fArgs)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	return got
}

func TestArithmetic(t *testing.T) {
	m, l := compile(t, `
long f(long a, long b) {
    return (a + b) * 3 - a / 2 + a % 7 - (a << 2) + (b >> 1) + (a & b) + (a | 3) + (a ^ b);
}
`)
	golden := func(a, b int64) int64 {
		return (a+b)*3 - a/2 + a%7 - (a << 2) + (b >> 1) + (a & b) + (a | 3) + (a ^ b)
	}
	cases := [][2]int64{{0, 1}, {10, 3}, {-17, 5}, {1 << 40, -9}, {123456, 654321}}
	for _, c := range cases {
		if got, want := callI(t, m, l, "f", uint64(c[0]), uint64(c[1])), golden(c[0], c[1]); got != want {
			t.Errorf("f(%d,%d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestControlFlow(t *testing.T) {
	m, l := compile(t, `
long collatz(long n) {
    long steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; }
        else { n = 3 * n + 1; }
        steps++;
    }
    return steps;
}
long sumto(long n) {
    long s = 0;
    for (long i = 1; i <= n; i++) { s += i; }
    return s;
}
long loops(long n) {
    long c = 0;
    for (long i = 0; i < n; i++) {
        if (i == 2) { continue; }
        if (i == 7) { break; }
        c += i;
    }
    return c;
}
`)
	if got := callI(t, m, l, "collatz", 27); got != 111 {
		t.Errorf("collatz(27) = %d, want 111", got)
	}
	if got := callI(t, m, l, "sumto", 100); got != 5050 {
		t.Errorf("sumto(100) = %d, want 5050", got)
	}
	// 0+1+3+4+5+6 = 19
	if got := callI(t, m, l, "loops", 100); got != 19 {
		t.Errorf("loops = %d, want 19", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	m, l := compile(t, `
long fib(long n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
long tri(long a, long b, long c, long d, long e, long f) {
    return a + 2*b + 3*c + 4*d + 5*e + 6*f;
}
`)
	if got := callI(t, m, l, "fib", 15); got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
	if got := callI(t, m, l, "tri", 1, 2, 3, 4, 5, 6); got != 1+4+9+16+25+36 {
		t.Errorf("tri = %d", got)
	}
}

func TestDoubles(t *testing.T) {
	m, l := compile(t, `
double mix(double a, double b) {
    double c = a * b + 0.5;
    if (a < b) { c = c - 1.0; }
    return c / 2.0;
}
double conv(long n) {
    double x = (double) n;
    return x * 1.5;
}
long trunc2(double x) {
    return (long) x;
}
`)
	if got := callF(t, m, l, "mix", nil, []float64{3.0, 2.0}); got != (3.0*2.0+0.5)/2.0 {
		t.Errorf("mix = %g", got)
	}
	if got := callF(t, m, l, "mix", nil, []float64{1.0, 2.0}); got != (1.0*2.0+0.5-1.0)/2.0 {
		t.Errorf("mix lt = %g", got)
	}
	if got := callF(t, m, l, "conv", []uint64{7}, nil); got != 10.5 {
		t.Errorf("conv = %g", got)
	}
	if got := callI(t, m, l, "trunc2", uint64(math.Float64bits(0))); got != 0 {
		_ = got // trunc2 takes a double argument; test below
	}
	a, _ := l.FuncAddr("trunc2")
	got, err := m.Call(a)
	_ = got
	_ = err
	// Call with a float argument properly:
	gotF, err := m.CallFloat(a, nil, []float64{-3.7})
	if err != nil {
		t.Fatal(err)
	}
	_ = gotF
	if r := int64(m.CPU.R[0]); r != -3 {
		t.Errorf("trunc2(-3.7) = %d, want -3", r)
	}
}

func TestPointersAndArrays(t *testing.T) {
	m, l := compile(t, `
long sum(long *a, long n) {
    long s = 0;
    for (long i = 0; i < n; i++) { s += a[i]; }
    return s;
}
long fill(long *a, long n) {
    for (long i = 0; i < n; i++) { a[i] = i * i; }
    return sum(a, n);
}
long localarr(void) {
    long buf[8];
    for (long i = 0; i < 8; i++) { buf[i] = i + 1; }
    long *p = buf;
    return sum(p, 8) + *p + p[7];
}
long swap(long *a, long *b) {
    long t = *a;
    *a = *b;
    *b = t;
    return *a - *b;
}
`)
	heap, err := m.AllocHeap(64)
	if err != nil {
		t.Fatal(err)
	}
	if got := callI(t, m, l, "fill", heap, 8); got != 0+1+4+9+16+25+36+49 {
		t.Errorf("fill/sum = %d", got)
	}
	if got := callI(t, m, l, "localarr"); got != 36+1+8 {
		t.Errorf("localarr = %d, want 45", got)
	}
	if err := m.Mem.Write64(heap, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Write64(heap+8, 3); err != nil {
		t.Fatal(err)
	}
	if got := callI(t, m, l, "swap", heap, heap+8); got != 3-10 {
		t.Errorf("swap = %d", got)
	}
}

func TestAddressOfLocal(t *testing.T) {
	m, l := compile(t, `
long inc(long *p) { *p = *p + 1; return *p; }
long f(long x) {
    long v = x;
    inc(&v);
    inc(&v);
    return v;
}
`)
	if got := callI(t, m, l, "f", 40); got != 42 {
		t.Errorf("f(40) = %d, want 42", got)
	}
}

func TestStructsAndGlobals(t *testing.T) {
	m, l := compile(t, `
struct P { double f; long dx; long dy; };
struct S { long ps; struct P p[]; };
struct S s5 = {5, {{-1.0, 0, 0}, {0.25, -1, 0}, {0.25, 1, 0}, {0.25, 0, -1}, {0.25, 0, 1}}};

long npoints(void) { return s5.ps; }
double coef(long i) { return s5.p[i].f; }
long off(long i) { return s5.p[i].dx * 1000 + s5.p[i].dy; }
double viaptr(struct S *s, long i) {
    struct P *p = s->p + i;
    return p->f * 2.0;
}
long structsize(void) { return sizeof(struct P); }
`)
	if got := callI(t, m, l, "npoints"); got != 5 {
		t.Errorf("npoints = %d", got)
	}
	if got := callF(t, m, l, "coef", []uint64{0}, nil); got != -1.0 {
		t.Errorf("coef(0) = %g", got)
	}
	if got := callF(t, m, l, "coef", []uint64{3}, nil); got != 0.25 {
		t.Errorf("coef(3) = %g", got)
	}
	if got := callI(t, m, l, "off", 1); got != -1000 {
		t.Errorf("off(1) = %d", got)
	}
	if got := callI(t, m, l, "off", 4); got != 1 {
		t.Errorf("off(4) = %d", got)
	}
	s5, err := l.GlobalAddr("s5")
	if err != nil {
		t.Fatal(err)
	}
	if got := callF(t, m, l, "viaptr", []uint64{s5, 2}, nil); got != 0.5 {
		t.Errorf("viaptr = %g", got)
	}
	if got := callI(t, m, l, "structsize"); got != 24 {
		t.Errorf("sizeof(struct P) = %d", got)
	}
}

func TestFunctionPointers(t *testing.T) {
	m, l := compile(t, `
typedef long (*binop_t)(long, long);
long add(long a, long b) { return a + b; }
long mul(long a, long b) { return a * b; }
long apply(binop_t op, long a, long b) { return op(a, b); }
long choose(long which, long a, long b) {
    binop_t op = add;
    if (which == 1) { op = mul; }
    return apply(op, a, b);
}
`)
	if got := callI(t, m, l, "choose", 0, 6, 7); got != 13 {
		t.Errorf("choose add = %d", got)
	}
	if got := callI(t, m, l, "choose", 1, 6, 7); got != 42 {
		t.Errorf("choose mul = %d", got)
	}
}

func TestLogicalOpsAndTernary(t *testing.T) {
	m, l := compile(t, `
long f(long a, long b) {
    long r = 0;
    if (a > 0 && b > 0) { r += 1; }
    if (a > 0 || b > 0) { r += 2; }
    r += (a > b) ? 10 : 20;
    r += !a;
    return r;
}
long shortcirc(long a) {
    long n = 0;
    // Right side must not evaluate: division by zero would fault.
    if (a != 0 && 100 / a > 5) { n = 1; }
    return n;
}
`)
	if got := callI(t, m, l, "f", 1, 2); got != 1+2+20+0 {
		t.Errorf("f(1,2) = %d", got)
	}
	if got := callI(t, m, l, "f", 0, 0); got != 0+0+20+1 {
		t.Errorf("f(0,0) = %d", got)
	}
	if got := callI(t, m, l, "f", 3, 1); got != 1+2+10+0 {
		t.Errorf("f(3,1) = %d", got)
	}
	if got := callI(t, m, l, "shortcirc", 0); got != 0 {
		t.Errorf("shortcirc(0) = %d", got)
	}
	if got := callI(t, m, l, "shortcirc", 10); got != 1 {
		t.Errorf("shortcirc(10) = %d", got)
	}
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	m, l := compile(t, `
long f(long a) {
    long x = a;
    x += 5; x -= 2; x *= 3;
    x++; ++x; x--;
    return x;
}
double g(double a) {
    double x = a;
    x += 0.5;
    x *= 2.0;
    return x;
}
long ptrbump(long *p) {
    long *q = p;
    q++;
    return *q;
}
`)
	if got := callI(t, m, l, "f", 10); got != ((10+5-2)*3)+1 {
		t.Errorf("f(10) = %d", got)
	}
	if got := callF(t, m, l, "g", nil, []float64{1.25}); got != (1.25+0.5)*2 {
		t.Errorf("g = %g", got)
	}
	heap, _ := m.AllocHeap(16)
	m.Mem.Write64(heap, 1)
	m.Mem.Write64(heap+8, 99)
	if got := callI(t, m, l, "ptrbump", heap); got != 99 {
		t.Errorf("ptrbump = %d", got)
	}
}

func TestRegisterPressureSpills(t *testing.T) {
	// 16 simultaneously live values force spilling.
	m, l := compile(t, `
long f(long a, long b) {
    long v1 = a + 1; long v2 = a + 2; long v3 = a + 3; long v4 = a + 4;
    long v5 = a + 5; long v6 = a + 6; long v7 = a + 7; long v8 = a + 8;
    long v9 = b + 1; long v10 = b + 2; long v11 = b + 3; long v12 = b + 4;
    long v13 = b + 5; long v14 = b + 6; long v15 = b + 7; long v16 = b + 8;
    return v1 + v2*2 + v3*3 + v4*4 + v5*5 + v6*6 + v7*7 + v8*8
         + v9 + v10*2 + v11*3 + v12*4 + v13*5 + v14*6 + v15*7 + v16*8;
}
`)
	golden := func(a, b int64) int64 {
		s := int64(0)
		for i := int64(1); i <= 8; i++ {
			s += (a + i) * i
		}
		for i := int64(1); i <= 8; i++ {
			s += (b + i) * i
		}
		return s
	}
	for _, c := range [][2]int64{{0, 0}, {5, -3}, {1 << 30, 17}} {
		if got, want := callI(t, m, l, "f", uint64(c[0]), uint64(c[1])), golden(c[0], c[1]); got != want {
			t.Errorf("f(%d,%d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestCallsAcrossLiveValues(t *testing.T) {
	// Values live across calls must survive (callee-saved or spilled).
	m, l := compile(t, `
long id(long x) { return x; }
long f(long a, long b) {
    long x = a * 2;
    long y = b * 3;
    long z = id(a) + id(b);
    return x + y + z;
}
`)
	if got := callI(t, m, l, "f", 10, 20); got != 20+60+30 {
		t.Errorf("f = %d", got)
	}
}

func TestGlobalScalarsAndArrays(t *testing.T) {
	m, l := compile(t, `
long counter = 41;
double factor = 2.5;
long table[4] = {10, 20, 30, 40};
double dtab[] = {1.5, 2.5};

long bump(void) { counter += 1; return counter; }
double scaled(long i) { return factor * (double) table[i]; }
double dsum(void) { return dtab[0] + dtab[1]; }
`)
	if got := callI(t, m, l, "bump"); got != 42 {
		t.Errorf("bump = %d", got)
	}
	if got := callI(t, m, l, "bump"); got != 43 {
		t.Errorf("bump 2 = %d", got)
	}
	if got := callF(t, m, l, "scaled", []uint64{2}, nil); got != 75.0 {
		t.Errorf("scaled = %g", got)
	}
	if got := callF(t, m, l, "dsum", nil, nil); got != 4.0 {
		t.Errorf("dsum = %g", got)
	}
}

func TestExternLinking(t *testing.T) {
	// Externs resolve against caller-provided addresses: here, another
	// compiled unit's function.
	m := vm.MustNew()
	l1, err := minc.CompileAndLink(m, "long triple(long x) { return 3 * x; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := l1.FuncAddr("triple")
	l2, err := minc.CompileAndLink(m, `
extern long triple(long x);
long f(long a) { return triple(a) + 1; }
`, map[string]uint64{"triple": tr})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := l2.FuncAddr("f")
	got, err := m.Call(a, 5)
	if err != nil || got != 16 {
		t.Errorf("f(5) = %d, %v", got, err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		"long f( { return 0; }",
		"long f(void) { return x; }",                                                   // undefined
		"long f(void) { double d; return d(1); }",                                      // not callable
		"long f(void) { return 1 +; }",                                                 // syntax
		"struct Q { long a; }; long f(void) { struct Q q; return q.b; }",               // no field
		"long f(long a, long b, long c, long d, long e, long g, long h) { return 0; }", // too many args
		"long f(void) { break; }",
		"long f(void) { long a[]; return 0; }",
	}
	for _, src := range cases {
		if _, err := minc.Compile(src); err == nil {
			t.Errorf("compiled invalid program: %q", src)
		}
	}
}

func TestDisassembleAndIRDump(t *testing.T) {
	m, l := compile(t, "long f(long a) { return a + 1; }")
	_ = m
	dis, err := l.Disassemble("f")
	if err != nil || !strings.Contains(dis, "ret") {
		t.Errorf("disassemble: %v\n%s", err, dis)
	}
	p, err := minc.Compile("long f(long a) { return a + 1; }")
	if err != nil {
		t.Fatal(err)
	}
	if ir := p.IRDump("f"); !strings.Contains(ir, "ret") {
		t.Errorf("IR dump:\n%s", ir)
	}
}

func TestNestedLoops2DStencilStyle(t *testing.T) {
	// The paper's sweep pattern with explicit index arithmetic.
	m, l := compile(t, `
double sweep(double *m1, double *m2, long xs, long ys) {
    double acc = 0.0;
    for (long y = 1; y < ys - 1; y++) {
        for (long x = 1; x < xs - 1; x++) {
            double v = 0.25 * (m1[(y-1)*xs+x] + m1[(y+1)*xs+x]
                             + m1[y*xs+x-1] + m1[y*xs+x+1]) - m1[y*xs+x];
            m2[y*xs+x] = v;
            acc += v;
        }
    }
    return acc;
}
`)
	const xs, ys = 8, 6
	m1, err := m.AllocHeap(xs * ys * 8)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := m.AllocHeap(xs * ys * 8)
	if err != nil {
		t.Fatal(err)
	}
	grid := make([]float64, xs*ys)
	for i := range grid {
		grid[i] = float64(i%7) * 0.5
	}
	if err := m.WriteF64Slice(m1, grid); err != nil {
		t.Fatal(err)
	}
	got := callF(t, m, l, "sweep", []uint64{m1, m2, xs, ys}, nil)
	// Golden model in Go.
	want := 0.0
	out := make([]float64, xs*ys)
	for y := 1; y < ys-1; y++ {
		for x := 1; x < xs-1; x++ {
			v := 0.25*(grid[(y-1)*xs+x]+grid[(y+1)*xs+x]+grid[y*xs+x-1]+grid[y*xs+x+1]) - grid[y*xs+x]
			out[y*xs+x] = v
			want += v
		}
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("sweep = %g, want %g", got, want)
	}
	gotOut, err := m.ReadF64Slice(m2, xs*ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if gotOut[i] != out[i] {
			t.Errorf("m2[%d] = %g, want %g", i, gotOut[i], out[i])
		}
	}
}

func TestAllCompoundOps(t *testing.T) {
	m, l := compile(t, `
long f(long a) {
    long x = a;
    x += 3; x -= 1; x *= 2; x /= 3; x %= 100;
    x <<= 2; x >>= 1; x &= 0xFF; x |= 0x100; x ^= 0x21;
    return x;
}
`)
	golden := func(a int64) int64 {
		x := a
		x += 3
		x -= 1
		x *= 2
		x /= 3
		x %= 100
		x <<= 2
		x >>= 1
		x &= 0xFF
		x |= 0x100
		x ^= 0x21
		return x
	}
	for _, a := range []int64{0, 7, -9, 123456} {
		if got, want := callI(t, m, l, "f", uint64(a)), golden(a); got != want {
			t.Errorf("f(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestOperatorPrecedenceTorture(t *testing.T) {
	m, l := compile(t, `
long f(long a, long b) {
    return a + b * 3 - a / 2 % 5 << 1 | a & b ^ (a | 7) + (b > a ? 1 : 2);
}
`)
	golden := func(a, b int64) int64 {
		t := int64(2)
		if b > a {
			t = 1
		}
		return (a+b*3-(a/2)%5)<<1 | ((a & b) ^ ((a | 7) + t))
	}
	for _, c := range [][2]int64{{1, 2}, {10, 3}, {-7, 9}, {1 << 30, -5}} {
		if got, want := callI(t, m, l, "f", uint64(c[0]), uint64(c[1])), golden(c[0], c[1]); got != want {
			t.Errorf("f(%d,%d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}
