package minc

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Per-IR-instruction code generation.

func (em *emitter) instr(b *irBlock, j int) error {
	in := &b.ins[j]
	switch in.Op {
	case irConst:
		d := em.defReg(in.Dst, intScratch1)
		em.push(isa.MakeRI(isa.MOVI, d, in.Imm))
		em.spillback(in.Dst, d)
		return nil

	case irConstF:
		d := em.defReg(in.Dst, floatScratch1)
		em.push(isa.Instr{Op: isa.FMOVI, Dst: isa.FRegOp(d), Src: isa.FImmOp(in.F)})
		em.spillback(in.Dst, d)
		return nil

	case irMov:
		cls := em.f.class[in.Dst]
		s := em.readVal(in.A, scratchFor(cls, 0))
		d := em.defReg(in.Dst, scratchFor(cls, 0))
		if d != s {
			if cls == classFloat {
				em.push(isa.MakeRR(isa.FMOV, d, s))
			} else {
				em.push(isa.MakeRR(isa.MOV, d, s))
			}
		}
		em.spillback(in.Dst, d)
		return nil

	case irBin:
		return em.bin(in)

	case irNeg:
		cls := em.f.class[in.Dst]
		s := em.readVal(in.A, scratchFor(cls, 0))
		d := em.defReg(in.Dst, scratchFor(cls, 0))
		if d != s {
			if cls == classFloat {
				em.push(isa.MakeRR(isa.FMOV, d, s))
			} else {
				em.push(isa.MakeRR(isa.MOV, d, s))
			}
		}
		if cls == classFloat {
			em.push(isa.MakeR(isa.FNEG, d))
		} else {
			em.push(isa.MakeR(isa.NEG, d))
		}
		em.spillback(in.Dst, d)
		return nil

	case irNot:
		s := em.readVal(in.A, intScratch1)
		d := em.defReg(in.Dst, intScratch1)
		if d != s {
			em.push(isa.MakeRR(isa.MOV, d, s))
		}
		em.push(isa.MakeR(isa.NOT, d))
		em.spillback(in.Dst, d)
		return nil

	case irSet:
		if err := em.compare(in); err != nil {
			return err
		}
		d := em.defReg(in.Dst, intScratch1)
		em.push(isa.MakeSetCC(in.Cond, d))
		em.spillback(in.Dst, d)
		return nil

	case irCvtIF:
		s := em.readVal(in.A, intScratch1)
		d := em.defReg(in.Dst, floatScratch1)
		em.push(isa.MakeRR(isa.CVTIF, d, s))
		em.spillback(in.Dst, d)
		return nil

	case irCvtFI:
		s := em.readVal(in.A, floatScratch1)
		d := em.defReg(in.Dst, intScratch1)
		em.push(isa.MakeRR(isa.CVTFI, d, s))
		em.spillback(in.Dst, d)
		return nil

	case irBitsFI:
		s := em.readVal(in.A, floatScratch1)
		d := em.defReg(in.Dst, intScratch1)
		em.push(isa.MakeRR(isa.FMOVFI, d, s))
		em.spillback(in.Dst, d)
		return nil

	case irLoad:
		base := em.readVal(in.A, intScratch1)
		if in.Off < math.MinInt32 || in.Off > math.MaxInt32 {
			return fmt.Errorf("minc: load offset %d out of range", in.Off)
		}
		mem := isa.BaseDisp(base, int32(in.Off))
		cls := em.f.class[in.Dst]
		if cls == classFloat {
			d := em.defReg(in.Dst, floatScratch1)
			em.push(isa.MakeRM(isa.FLOAD, d, mem))
			em.spillback(in.Dst, d)
			return nil
		}
		op := isa.LOAD
		if in.Size == 1 {
			op = isa.LOADB
		}
		d := em.defReg(in.Dst, intScratch1)
		em.push(isa.MakeRM(op, d, mem))
		em.spillback(in.Dst, d)
		return nil

	case irStore:
		base := em.readVal(in.A, intScratch1)
		if in.Off < math.MinInt32 || in.Off > math.MaxInt32 {
			return fmt.Errorf("minc: store offset %d out of range", in.Off)
		}
		mem := isa.BaseDisp(base, int32(in.Off))
		cls := em.f.class[in.B]
		v := em.readVal(in.B, scratchFor(cls, 1))
		if cls == classFloat {
			em.push(isa.MakeMR(isa.FSTORE, mem, v))
			return nil
		}
		op := isa.STORE
		if in.Size == 1 {
			op = isa.STOREB
		}
		em.push(isa.MakeMR(op, mem, v))
		return nil

	case irAddr:
		d := em.defReg(in.Dst, intScratch1)
		switch in.Sym.kind {
		case symLocal, symParam:
			em.push(isa.MakeRM(isa.LEA, d, isa.BaseDisp(isa.SP, int32(in.Sym.frameOff))))
		default:
			a, err := em.addrs.of(in.Sym)
			if err != nil {
				return err
			}
			mi := isa.MakeRI(isa.MOVI, d, int64(a))
			mi.Wide = true // keep two-pass layout stable
			em.push(mi)
		}
		em.spillback(in.Dst, d)
		return nil

	case irParam:
		// Handled in batch at block entry; see emitParams. Individual
		// irParam reaching here means batching missed it.
		return em.emitParams(b, j)

	case irCall, irCallPtr:
		return em.call(in)

	case irRet:
		if in.A >= 0 {
			cls := em.f.class[in.A]
			if cls == classFloat {
				s := em.readVal(in.A, floatScratch1)
				if s != 0 {
					em.push(isa.MakeRR(isa.FMOV, 0, s))
				}
			} else {
				s := em.readVal(in.A, intScratch1)
				if s != isa.R0 {
					em.push(isa.MakeRR(isa.MOV, isa.R0, s))
				}
			}
		}
		em.pushBranch(isa.MakeRel(isa.JMP, 0), epilogueBlock)
		return nil

	case irJmp:
		em.pushBranch(isa.MakeRel(isa.JMP, 0), in.T.id)
		return nil

	case irBr:
		if err := em.compare(in); err != nil {
			return err
		}
		em.pushBranch(isa.MakeJCC(in.Cond, 0), in.T.id)
		em.pushBranch(isa.MakeRel(isa.JMP, 0), in.Fb.id)
		return nil
	}
	return fmt.Errorf("minc: unhandled IR op %d", in.Op)
}

// emitParams performs the parallel move of a run of irParam instructions
// beginning at index j (only the first of the run reaches instr; the rest
// are consumed here and skipped by marking them done).
func (em *emitter) emitParams(b *irBlock, j int) error {
	// Gather the whole run.
	var run []*irInstr
	for k := j; k < len(b.ins) && b.ins[k].Op == irParam; k++ {
		run = append(run, &b.ins[k])
	}
	if len(run) == 0 || b.ins[j].paramDone {
		return nil
	}
	for _, in := range run {
		in.paramDone = true
	}
	// Phase 1: params destined for frame slots (pure reads of ABI regs).
	for _, in := range run {
		l := em.loc[in.Dst]
		if l.inReg {
			continue
		}
		src, cls := abiParamReg(in.Idx)
		if cls == classFloat {
			em.push(isa.MakeMR(isa.FSTORE, isa.BaseDisp(isa.SP, int32(l.off)), src))
		} else {
			em.push(isa.MakeMR(isa.STORE, isa.BaseDisp(isa.SP, int32(l.off)), src))
		}
	}
	// Phase 2: register destinations via parallel move.
	var moves []pmove
	for _, in := range run {
		l := em.loc[in.Dst]
		if !l.inReg {
			continue
		}
		src, cls := abiParamReg(in.Idx)
		moves = append(moves, pmove{srcReg: src, dst: l.reg, cls: cls})
	}
	em.parallelMove(moves)
	return nil
}

func abiParamReg(idx int) (isa.Reg, vclass) {
	if idx >= 100 {
		return isa.FloatArgRegs[idx-100], classFloat
	}
	return isa.IntArgRegs[idx], classInt
}

// pmove is one pending parallel move: register-to-register within a class.
type pmove struct {
	srcReg isa.Reg
	dst    isa.Reg
	cls    vclass
}

// parallelMove emits register moves respecting interference, breaking
// cycles with the class scratch register.
func (em *emitter) parallelMove(moves []pmove) {
	pending := make([]pmove, 0, len(moves))
	for _, m := range moves {
		if m.srcReg != m.dst {
			pending = append(pending, m)
		}
	}
	mov := func(cls vclass, dst, src isa.Reg) {
		if cls == classFloat {
			em.push(isa.MakeRR(isa.FMOV, dst, src))
		} else {
			em.push(isa.MakeRR(isa.MOV, dst, src))
		}
	}
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); i++ {
			m := pending[i]
			blocked := false
			for k, o := range pending {
				if k != i && o.srcReg == m.dst && o.cls == m.cls {
					blocked = true
					break
				}
			}
			if !blocked {
				mov(m.cls, m.dst, m.srcReg)
				pending = append(pending[:i], pending[i+1:]...)
				progress = true
				i--
			}
		}
		if !progress {
			// Cycle: rotate through the scratch register.
			m := pending[0]
			sc := scratchFor(m.cls, 0)
			mov(m.cls, sc, m.srcReg)
			for k := range pending {
				if pending[k].srcReg == m.srcReg && pending[k].cls == m.cls {
					pending[k].srcReg = sc
				}
			}
		}
	}
}

// compare emits CMP/CMPI/FCMP for irSet and irBr.
func (em *emitter) compare(in *irInstr) error {
	if in.FCmp {
		a := em.readVal(in.A, floatScratch1)
		var bR isa.Reg
		if in.UseImm {
			return fmt.Errorf("minc: float compare with immediate")
		}
		bR = em.readVal(in.B, floatScratch2)
		em.push(isa.MakeRR(isa.FCMP, a, bR))
		return nil
	}
	a := em.readVal(in.A, intScratch1)
	if in.UseImm {
		em.push(isa.MakeRI(isa.CMPI, a, in.Imm))
		return nil
	}
	bR := em.readVal(in.B, intScratch2)
	em.push(isa.MakeRR(isa.CMP, a, bR))
	return nil
}

// binOpcodes maps an IR operator to (reg form, imm form) per class.
func binOpcodes(op string, cls vclass) (isa.Opcode, isa.Opcode, error) {
	if cls == classFloat {
		switch op {
		case "+":
			return isa.FADD, 0, nil
		case "-":
			return isa.FSUB, 0, nil
		case "*":
			return isa.FMUL, 0, nil
		case "/":
			return isa.FDIV, 0, nil
		}
		return 0, 0, fmt.Errorf("minc: bad float operator %q", op)
	}
	switch op {
	case "+":
		return isa.ADD, isa.ADDI, nil
	case "-":
		return isa.SUB, isa.SUBI, nil
	case "*":
		return isa.IMUL, isa.IMULI, nil
	case "/":
		return isa.IDIV, 0, nil
	case "%":
		return isa.IREM, 0, nil
	case "&":
		return isa.AND, isa.ANDI, nil
	case "|":
		return isa.OR, isa.ORI, nil
	case "^":
		return isa.XOR, isa.XORI, nil
	case "<<":
		return isa.SHL, isa.SHLI, nil
	case ">>":
		return isa.SAR, isa.SARI, nil
	}
	return 0, 0, fmt.Errorf("minc: bad operator %q", op)
}

// bin emits a two-address binary operation dst = a op b.
func (em *emitter) bin(in *irInstr) error {
	cls := em.f.class[in.Dst]
	rr, ri, err := binOpcodes(in.Op2, cls)
	if err != nil {
		return err
	}
	mov := func(dst, src isa.Reg) {
		if dst == src {
			return
		}
		if cls == classFloat {
			em.push(isa.MakeRR(isa.FMOV, dst, src))
		} else {
			em.push(isa.MakeRR(isa.MOV, dst, src))
		}
	}
	a := em.readVal(in.A, scratchFor(cls, 0))
	d := em.defReg(in.Dst, scratchFor(cls, 0))

	if in.UseImm {
		if ri == 0 {
			// No immediate form (division): materialize the constant.
			sc := scratchFor(cls, 1)
			em.push(isa.MakeRI(isa.MOVI, sc, in.Imm))
			mov(d, a)
			em.push(isa.MakeRR(rr, d, sc))
		} else {
			mov(d, a)
			em.push(isa.MakeRI(ri, d, in.Imm))
		}
		em.spillback(in.Dst, d)
		return nil
	}

	bR := em.readVal(in.B, scratchFor(cls, 1))
	if d == bR && d != a {
		// dst aliases the right operand: compute in scratch.
		commutative := in.Op2 == "+" || in.Op2 == "*" || in.Op2 == "&" ||
			in.Op2 == "|" || in.Op2 == "^"
		if commutative {
			em.push(isa.MakeRR(rr, d, a))
			em.spillback(in.Dst, d)
			return nil
		}
		sc := scratchFor(cls, 1)
		if sc == bR {
			sc = scratchFor(cls, 0)
		}
		mov(sc, bR)
		mov(d, a)
		em.push(isa.MakeRR(rr, d, sc))
		em.spillback(in.Dst, d)
		return nil
	}
	mov(d, a)
	em.push(isa.MakeRR(rr, d, bR))
	em.spillback(in.Dst, d)
	return nil
}

// call emits argument setup, the call itself, and result placement.
func (em *emitter) call(in *irInstr) error {
	// Indirect target first, into a scratch no argument move touches.
	var targetReg isa.Reg
	if in.Op == irCallPtr {
		t := em.readVal(in.A, intScratch2)
		if t != intScratch2 {
			em.push(isa.MakeRR(isa.MOV, intScratch2, t))
		}
		targetReg = intScratch2
	}

	// Argument moves: slot sources loaded directly into their ABI reg
	// (dest regs are distinct), register sources via parallel move.
	var moves []pmove
	intIdx, floatIdx := 0, 0
	type slotArg struct {
		off int64
		dst isa.Reg
		cls vclass
	}
	var slotArgs []slotArg
	for _, a := range in.Args {
		cls := em.f.class[a]
		var dst isa.Reg
		if cls == classFloat {
			dst = isa.FloatArgRegs[floatIdx]
			floatIdx++
		} else {
			dst = isa.IntArgRegs[intIdx]
			intIdx++
		}
		l := em.loc[a]
		if l.inReg {
			moves = append(moves, pmove{srcReg: l.reg, dst: dst, cls: cls})
		} else {
			slotArgs = append(slotArgs, slotArg{off: l.off, dst: dst, cls: cls})
		}
	}
	em.parallelMove(moves)
	for _, sa := range slotArgs {
		if sa.cls == classFloat {
			em.push(isa.MakeRM(isa.FLOAD, sa.dst, isa.BaseDisp(isa.SP, int32(sa.off))))
		} else {
			em.push(isa.MakeRM(isa.LOAD, sa.dst, isa.BaseDisp(isa.SP, int32(sa.off))))
		}
	}

	if in.Op == irCall {
		a, err := em.addrs.of(in.Sym)
		if err != nil {
			return err
		}
		em.push(isa.MakeRel(isa.CALL, a))
	} else {
		em.push(isa.MakeR(isa.CALLR, targetReg))
	}

	if in.Dst >= 0 {
		cls := em.f.class[in.Dst]
		d := em.defReg(in.Dst, scratchFor(cls, 0))
		if cls == classFloat {
			if d != 0 {
				em.push(isa.MakeRR(isa.FMOV, d, 0))
			}
		} else if d != isa.R0 {
			em.push(isa.MakeRR(isa.MOV, d, isa.R0))
		}
		em.spillback(in.Dst, d)
	}
	return nil
}
