package minc

import "sort"

// LineEntry maps one emitted instruction's address to the source line of
// the statement it was lowered from (0 for prologue/epilogue scaffolding).
type LineEntry struct {
	Addr uint64 `json:"addr"`
	Line int    `json:"line"`
}

type funcLines struct {
	name    string
	lo, hi  uint64      // [lo, hi) code byte range
	entries []LineEntry // sorted by Addr
}

// LineTable maps simulated PCs back to (function name, source line). It is
// built by Link from the final emission pass and consumed by the vm
// sampling profiler's Symbolize hook.
type LineTable struct {
	funcs []funcLines // sorted by lo, non-overlapping
}

func (t *LineTable) add(name string, lo, hi uint64, entries []LineEntry) {
	t.funcs = append(t.funcs, funcLines{name: name, lo: lo, hi: hi, entries: entries})
}

func (t *LineTable) sortFuncs() {
	sort.Slice(t.funcs, func(i, j int) bool { return t.funcs[i].lo < t.funcs[j].lo })
}

// Lookup resolves a PC anywhere inside an instruction's encoding to that
// instruction's function and source line. ok is false for PCs outside
// every linked function (e.g. rewritten JIT code).
func (t *LineTable) Lookup(pc uint64) (fn string, line int, ok bool) {
	if t == nil {
		return "", 0, false
	}
	i := sort.Search(len(t.funcs), func(i int) bool { return t.funcs[i].lo > pc })
	if i == 0 {
		return "", 0, false
	}
	f := &t.funcs[i-1]
	if pc >= f.hi {
		return "", 0, false
	}
	j := sort.Search(len(f.entries), func(j int) bool { return f.entries[j].Addr > pc })
	if j == 0 {
		return f.name, 0, true
	}
	return f.name, f.entries[j-1].Line, true
}

// Funcs returns the table's function names in address order.
func (t *LineTable) Funcs() []string {
	out := make([]string, len(t.funcs))
	for i := range t.funcs {
		out[i] = t.funcs[i].name
	}
	return out
}
