package minc

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Program is a compiled translation unit, ready to be linked into a
// machine.
type Program struct {
	Unit       *Unit
	funcs      []*irFunc
	globalSyms map[string]*symbol
}

// Compile parses, checks, lowers and optimizes one translation unit at the
// default level (O1).
func Compile(src string) (*Program, error) {
	return CompileWithLevel(src, O1)
}

// CompileWithLevel compiles with an explicit optimization level.
func CompileWithLevel(src string, level OptLevel) (*Program, error) {
	unit, err := Parse(src)
	if err != nil {
		return nil, err
	}
	checked, globals, err := check(unit)
	if err != nil {
		return nil, err
	}
	p := &Program{Unit: unit, globalSyms: globals}
	for _, fd := range unit.Funcs {
		irf, err := lowerFunc(checked[fd.Name])
		if err != nil {
			return nil, err
		}
		// Terminate any unreachable open blocks.
		for _, b := range irf.blocks {
			if !b.terminated() {
				b.ins = append(b.ins, irInstr{Op: irRet, A: -1})
			}
		}
		optimizeIR(irf, level)
		p.funcs = append(p.funcs, irf)
	}
	return p, nil
}

// IRDump renders the IR of one function (for tests and debugging).
func (p *Program) IRDump(name string) string {
	for _, f := range p.funcs {
		if f.name == name {
			return f.String()
		}
	}
	return ""
}

// Linked is a program placed into a machine's address space.
type Linked struct {
	Prog    *Program
	Machine *vm.Machine
	Funcs   map[string]uint64
	Globals map[string]uint64
	Sizes   map[string]int // code bytes per function
	Lines   *LineTable     // PC -> (function, source line), from the final pass
}

// FuncAddr returns a linked function's entry address.
func (l *Linked) FuncAddr(name string) (uint64, error) {
	a, ok := l.Funcs[name]
	if !ok {
		return 0, fmt.Errorf("minc: no function %s", name)
	}
	return a, nil
}

// GlobalAddr returns a linked global's address.
func (l *Linked) GlobalAddr(name string) (uint64, error) {
	a, ok := l.Globals[name]
	if !ok {
		return 0, fmt.Errorf("minc: no global %s", name)
	}
	return a, nil
}

// Disassemble returns the generated code of one function as a listing.
func (l *Linked) Disassemble(name string) (string, error) {
	a, err := l.FuncAddr(name)
	if err != nil {
		return "", err
	}
	n := l.Sizes[name]
	b, err := l.Machine.Mem.ReadBytes(a, n)
	if err != nil {
		return "", err
	}
	return isa.Disassemble(b, a, false), nil
}

// Link lays out globals, resolves symbols (externs come from the given
// map), generates code and writes everything into the machine.
func (p *Program) Link(m *vm.Machine, externs map[string]uint64) (*Linked, error) {
	l := &Linked{
		Prog:    p,
		Machine: m,
		Funcs:   make(map[string]uint64),
		Globals: make(map[string]uint64),
		Sizes:   make(map[string]int),
	}
	// Globals.
	for _, g := range p.Unit.Globals {
		size := globalSize(g)
		addr, err := m.DataAlloc.Alloc(uint64(size))
		if err != nil {
			return nil, fmt.Errorf("minc: allocating global %s: %w", g.Name, err)
		}
		buf := make([]byte, size)
		if g.Init != nil {
			if err := fillInit(g.Type, g.Init, buf, 0); err != nil {
				return nil, fmt.Errorf("minc: initializing %s: %w", g.Name, err)
			}
		}
		if err := m.Mem.WriteBytes(addr, buf); err != nil {
			return nil, err
		}
		l.Globals[g.Name] = addr
	}

	// Function address resolution needs code sizes: emit once against
	// placeholder function addresses (sizes are layout-stable), then
	// place and re-emit.
	probe := &symAddrs{global: l.Globals, fn: map[string]uint64{}}
	for _, f := range p.funcs {
		probe.fn[f.name] = 0x7F00_0000
	}
	for _, e := range p.Unit.Externs {
		if a, ok := externs[e.Name]; ok {
			probe.fn[e.Name] = a
		} else {
			probe.fn[e.Name] = 0x7F00_0000
		}
	}
	sizes := make(map[string]int)
	total := uint64(0)
	for _, f := range p.funcs {
		_, code, _, err := emitFunc(f, 0, probe)
		if err != nil {
			return nil, err
		}
		sizes[f.name] = len(code)
		total += uint64(len(code)) + 16 // padding between functions
	}
	base, err := m.CodeAlloc.Alloc(total)
	if err != nil {
		return nil, fmt.Errorf("minc: allocating code: %w", err)
	}
	real := &symAddrs{global: l.Globals, fn: map[string]uint64{}}
	addr := base
	for _, f := range p.funcs {
		real.fn[f.name] = addr
		l.Funcs[f.name] = addr
		addr += uint64(sizes[f.name]) + 16
	}
	for _, e := range p.Unit.Externs {
		a, ok := externs[e.Name]
		if !ok {
			return nil, fmt.Errorf("minc: unresolved extern %s", e.Name)
		}
		real.fn[e.Name] = a
	}
	l.Lines = &LineTable{}
	for _, f := range p.funcs {
		ins, code, lines, err := emitFunc(f, real.fn[f.name], real)
		if err != nil {
			return nil, err
		}
		if len(code) != sizes[f.name] {
			return nil, fmt.Errorf("minc: %s changed size between passes (%d -> %d)", f.name, sizes[f.name], len(code))
		}
		if err := m.Mem.WriteBytes(real.fn[f.name], code); err != nil {
			return nil, err
		}
		l.Sizes[f.name] = len(code)
		entries := make([]LineEntry, len(ins))
		for i := range ins {
			entries[i] = LineEntry{Addr: ins[i].Addr, Line: lines[i]}
		}
		lo := real.fn[f.name]
		l.Lines.add(f.name, lo, lo+uint64(len(code)), entries)
	}
	l.Lines.sortFuncs()
	m.InvalidateICache()
	return l, nil
}

// CompileAndLink is the one-call convenience used by tests and examples.
func CompileAndLink(m *vm.Machine, src string, externs map[string]uint64) (*Linked, error) {
	p, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return p.Link(m, externs)
}

// globalSize computes a global's storage size, extending structs whose
// last member is a flexible array by the initializer length (the paper's
// struct S { int ps; struct P p[]; }).
func globalSize(g *Global) int64 {
	size := g.Type.Size()
	t := g.Type
	if t.Kind == TStruct && len(t.Fields) > 0 && g.Init != nil && len(g.Init.List) == len(t.Fields) {
		last := t.Fields[len(t.Fields)-1]
		if last.Type.Kind == TArray && last.Type.Len < 0 {
			n := len(g.Init.List[len(t.Fields)-1].List)
			size += int64(n) * last.Type.Elem.Size()
		}
	}
	if t.Kind == TArray && t.Len < 0 && g.Init != nil {
		size = int64(len(g.Init.List)) * t.Elem.Size()
	}
	if size == 0 {
		size = 8
	}
	return size
}

// constEval evaluates a constant initializer expression.
func constEval(e *Expr) (int64, float64, bool, error) {
	switch e.Kind {
	case ExIntLit:
		return e.IVal, float64(e.IVal), false, nil
	case ExFloatLit:
		return int64(e.FVal), e.FVal, true, nil
	case ExSizeof:
		return e.sizeofT.Size(), float64(e.sizeofT.Size()), false, nil
	case ExUnary:
		if e.Op == "-" {
			i, f, isF, err := constEval(e.X)
			return -i, -f, isF, err
		}
	case ExBinary:
		xi, xf, xIsF, err := constEval(e.X)
		if err != nil {
			return 0, 0, false, err
		}
		yi, yf, yIsF, err := constEval(e.Y)
		if err != nil {
			return 0, 0, false, err
		}
		isF := xIsF || yIsF
		switch e.Op {
		case "+":
			return xi + yi, xf + yf, isF, nil
		case "-":
			return xi - yi, xf - yf, isF, nil
		case "*":
			return xi * yi, xf * yf, isF, nil
		case "/":
			if !isF && yi != 0 {
				return xi / yi, xf / yf, isF, nil
			}
			if isF {
				return int64(xf / yf), xf / yf, true, nil
			}
		}
	case ExCast:
		i, f, _, err := constEval(e.X)
		if err != nil {
			return 0, 0, false, err
		}
		if e.castTo.Kind == TDouble {
			return i, f, true, nil
		}
		return i, f, false, nil
	}
	return 0, 0, false, errAt(e.Line, 1, "initializer is not a constant")
}

// fillInit writes an initializer into buf at offset off.
func fillInit(t *Type, iv *InitVal, buf []byte, off int64) error {
	switch t.Kind {
	case TLong, TPtr:
		if iv.Expr == nil {
			return errAt(iv.Line, 1, "scalar initializer expected")
		}
		i, f, isF, err := constEval(iv.Expr)
		if err != nil {
			return err
		}
		v := i
		if isF {
			v = int64(f)
		}
		putLE(buf, off, uint64(v))
		return nil
	case TDouble:
		if iv.Expr == nil {
			return errAt(iv.Line, 1, "scalar initializer expected")
		}
		i, f, isF, err := constEval(iv.Expr)
		if err != nil {
			return err
		}
		if !isF {
			f = float64(i)
		}
		putLE(buf, off, math.Float64bits(f))
		return nil
	case TArray:
		if iv.List == nil {
			return errAt(iv.Line, 1, "array initializer must be a list")
		}
		esz := t.Elem.Size()
		for i, sub := range iv.List {
			if err := fillInit(t.Elem, sub, buf, off+int64(i)*esz); err != nil {
				return err
			}
		}
		return nil
	case TStruct:
		if iv.List == nil {
			return errAt(iv.Line, 1, "struct initializer must be a list")
		}
		if len(iv.List) > len(t.Fields) {
			return errAt(iv.Line, 1, "too many initializers for struct %s", t.StructName)
		}
		for i, sub := range iv.List {
			f := t.Fields[i]
			if err := fillInit(f.Type, sub, buf, off+f.Offset); err != nil {
				return err
			}
		}
		return nil
	}
	return errAt(iv.Line, 1, "cannot initialize type %s", t)
}

func putLE(buf []byte, off int64, v uint64) {
	for i := 0; i < 8; i++ {
		buf[off+int64(i)] = byte(v)
		v >>= 8
	}
}
