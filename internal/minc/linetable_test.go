package minc_test

import (
	"testing"

	"repro/internal/minc"
	"repro/internal/vm"
)

// TestLineTableLookup checks PC-to-source mapping on a two-function unit:
// every generated instruction resolves to its owning function, line numbers
// are plausible, and out-of-range PCs are rejected.
func TestLineTableLookup(t *testing.T) {
	const src = `long add3(long x) {
    long y = x + 1;
    long z = y + 2;
    return z;
}
long twice(long x) {
    return add3(x) + add3(x);
}
`
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Lines == nil {
		t.Fatal("Linked.Lines is nil")
	}
	if got := l.Lines.Funcs(); len(got) != 2 {
		t.Fatalf("Funcs() = %v, want add3 and twice", got)
	}
	for name, lineRange := range map[string][2]int{
		"add3":  {1, 5},
		"twice": {6, 8},
	} {
		addr, err := l.FuncAddr(name)
		if err != nil {
			t.Fatal(err)
		}
		size := l.Sizes[name]
		sawLine := false
		for pc := addr; pc < addr+uint64(size); pc++ {
			fn, line, ok := l.Lines.Lookup(pc)
			if !ok {
				t.Fatalf("Lookup(0x%x) failed inside %s", pc, name)
			}
			if fn != name {
				t.Fatalf("Lookup(0x%x) = %s, want %s", pc, fn, name)
			}
			// Epilogue instructions carry line 0; body lines must stay in
			// the function's source range.
			if line != 0 && (line < lineRange[0] || line > lineRange[1]) {
				t.Errorf("%s pc 0x%x: line %d outside %v", name, pc, line, lineRange)
			}
			if line > 0 {
				sawLine = true
			}
		}
		if !sawLine {
			t.Errorf("%s: no instruction carries a source line", name)
		}
	}
	addr, _ := l.FuncAddr("add3")
	if _, _, ok := l.Lines.Lookup(addr - 1); ok {
		t.Error("Lookup before first function should fail")
	}
	var nilTable *minc.LineTable
	if _, _, ok := nilTable.Lookup(addr); ok {
		t.Error("nil table Lookup should fail")
	}
}
