package minc

// The AST. Nodes carry the source line for error messages; the checker
// annotates expressions with their type.

// Unit is one parsed translation unit.
type Unit struct {
	Structs  map[string]*Type
	Typedefs map[string]*Type
	Globals  []*Global
	Funcs    []*FuncDecl
	Externs  []*FuncDecl // extern declarations, bound at link time
}

// Global is a file-scope variable with an optional initializer.
type Global struct {
	Name string
	Type *Type
	Init *InitVal
	Line int
}

// InitVal is an initializer: a scalar expression (constant) or a brace
// list.
type InitVal struct {
	Expr *Expr
	List []*InitVal
	Line int
}

// FuncDecl is a function definition or extern declaration.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []Param
	Body   *Stmt // nil for extern
	Line   int
}

// Param is one formal parameter.
type Param struct {
	Name string
	Type *Type
}

// StmtKind classifies statements.
type StmtKind int

// Statement kinds.
const (
	StBlock StmtKind = iota
	StDecl
	StExpr
	StIf
	StWhile
	StFor
	StReturn
	StBreak
	StContinue
)

// Stmt is one statement.
type Stmt struct {
	Kind StmtKind
	Line int

	// StBlock
	List []*Stmt
	// StDecl
	DeclName string
	DeclType *Type
	DeclInit *Expr
	declSym  *symbol
	// StExpr / StReturn value
	X *Expr
	// StIf / StWhile / StFor
	Cond *Stmt // StFor init is Init, Cond below
	Then *Stmt
	Else *Stmt
	// StFor
	Init  *Stmt
	Post  *Stmt
	CondE *Expr
	Body  *Stmt
}

// ExprKind classifies expressions.
type ExprKind int

// Expression kinds.
const (
	ExIntLit ExprKind = iota
	ExFloatLit
	ExIdent
	ExUnary  // Op: - ! ~ & *
	ExBinary // arithmetic, comparison, logical
	ExAssign // =, +=, -=, *=, /=
	ExIncDec // ++/-- (statement position)
	ExCall   // direct or through function pointer
	ExIndex  // a[i]
	ExMember // a.f or p->f (Arrow)
	ExCast   // (type) x
	ExCond   // a ? b : c
	ExSizeof
)

// Expr is one expression; Type is filled by the checker.
type Expr struct {
	Kind  ExprKind
	Line  int
	Type  *Type
	IVal  int64
	FVal  float64
	Name  string
	Op    string
	Arrow bool
	X     *Expr
	Y     *Expr
	Z     *Expr
	Args  []*Expr
	// Checker annotations:
	sym      *symbol
	fieldOff int64
	castTo   *Type
	sizeofT  *Type
}

// symKind classifies resolved symbols.
type symKind int

const (
	symGlobal symKind = iota
	symFunc
	symExtern
	symLocal
	symParam
)

// symbol is a resolved name: global, function, extern, local or parameter.
type symbol struct {
	kind symKind
	name string
	typ  *Type
	fn   *FuncDecl // symFunc/symExtern
	// Locals and parameters:
	addrTaken bool
	isArray   bool // arrays always live in the frame
	paramIdx  int
	// Assigned later:
	frameOff int64 // frame slot offset for stack-allocated locals
	vreg     int   // virtual register for register-allocated locals
	gaddr    uint64
}
