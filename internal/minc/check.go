package minc

// The checker resolves names, computes expression types, applies C's usual
// conversions (long <-> double, array decay, pointer arithmetic scaling)
// and marks address-taken locals, which lowering keeps in frame slots
// instead of registers.

type checker struct {
	unit    *Unit
	globals map[string]*symbol
	scopes  []map[string]*symbol
	fn      *FuncDecl
	locals  []*symbol // all locals of the current function, in decl order
	inLoop  int
}

// checkedFunc carries checker output per function for the lowering stage.
type checkedFunc struct {
	decl   *FuncDecl
	params []*symbol
	locals []*symbol
}

// check resolves and types the whole unit.
func check(u *Unit) (map[string]*checkedFunc, map[string]*symbol, error) {
	c := &checker{unit: u, globals: make(map[string]*symbol)}
	for _, g := range u.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return nil, nil, errAt(g.Line, 1, "global %s redefined", g.Name)
		}
		c.globals[g.Name] = &symbol{kind: symGlobal, name: g.Name, typ: g.Type}
	}
	for _, f := range u.Externs {
		c.globals[f.Name] = &symbol{kind: symExtern, name: f.Name, typ: funcType(f), fn: f}
	}
	for _, f := range u.Funcs {
		if old, dup := c.globals[f.Name]; dup && old.kind != symExtern {
			return nil, nil, errAt(f.Line, 1, "%s redefined", f.Name)
		}
		c.globals[f.Name] = &symbol{kind: symFunc, name: f.Name, typ: funcType(f), fn: f}
	}

	out := make(map[string]*checkedFunc)
	for _, f := range u.Funcs {
		cf, err := c.checkFunc(f)
		if err != nil {
			return nil, nil, err
		}
		out[f.Name] = cf
	}
	return out, c.globals, nil
}

func funcType(f *FuncDecl) *Type {
	ft := &Type{Kind: TFunc, Ret: f.Ret}
	for _, p := range f.Params {
		ft.Params = append(ft.Params, p.Type)
	}
	return ft
}

func (c *checker) checkFunc(f *FuncDecl) (*checkedFunc, error) {
	nInt, nFloat := 0, 0
	cf := &checkedFunc{decl: f}
	c.fn = f
	c.locals = nil
	c.scopes = []map[string]*symbol{make(map[string]*symbol)}
	for i, p := range f.Params {
		if !p.Type.isScalar() {
			return nil, errAt(f.Line, 1, "parameter %s: only scalar parameters supported", p.Name)
		}
		if p.Type.isInt() {
			nInt++
		} else {
			nFloat++
		}
		s := &symbol{kind: symParam, name: p.Name, typ: p.Type, paramIdx: i}
		c.scopes[0][p.Name] = s
		cf.params = append(cf.params, s)
	}
	if nInt > 6 || nFloat > 8 {
		return nil, errAt(f.Line, 1, "%s: too many parameters for the register ABI", f.Name)
	}
	if err := c.stmt(f.Body); err != nil {
		return nil, err
	}
	cf.locals = c.locals
	return cf, nil
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) stmt(s *Stmt) error {
	if s == nil {
		return nil
	}
	switch s.Kind {
	case StBlock:
		c.push()
		defer c.pop()
		for _, sub := range s.List {
			if err := c.stmt(sub); err != nil {
				return err
			}
		}
		return nil

	case StDecl:
		t := s.DeclType
		if t.Kind == TVoid || (t.Kind == TStruct && t.Size() == 0) {
			return errAt(s.Line, 1, "cannot declare variable of type %s", t)
		}
		if t.Kind == TArray && t.Len < 0 {
			return errAt(s.Line, 1, "local array %s needs a length", s.DeclName)
		}
		sym := &symbol{kind: symLocal, name: s.DeclName, typ: t, isArray: t.Kind == TArray || t.Kind == TStruct}
		c.scopes[len(c.scopes)-1][s.DeclName] = sym
		c.locals = append(c.locals, sym)
		s.declSym = sym
		if s.DeclInit != nil {
			if t.Kind == TArray || t.Kind == TStruct {
				return errAt(s.Line, 1, "aggregate local initializers not supported")
			}
			if err := c.expr(s.DeclInit); err != nil {
				return err
			}
			if err := c.assignable(t, s.DeclInit, s.Line); err != nil {
				return err
			}
		}
		return nil

	case StExpr:
		return c.expr(s.X)

	case StIf:
		if err := c.cond(s.CondE); err != nil {
			return err
		}
		if err := c.stmt(s.Then); err != nil {
			return err
		}
		return c.stmt(s.Else)

	case StWhile:
		if err := c.cond(s.CondE); err != nil {
			return err
		}
		c.inLoop++
		defer func() { c.inLoop-- }()
		return c.stmt(s.Body)

	case StFor:
		c.push()
		defer c.pop()
		if err := c.stmt(s.Init); err != nil {
			return err
		}
		if s.CondE != nil {
			if err := c.cond(s.CondE); err != nil {
				return err
			}
		}
		if err := c.stmt(s.Post); err != nil {
			return err
		}
		c.inLoop++
		defer func() { c.inLoop-- }()
		return c.stmt(s.Body)

	case StReturn:
		if s.X == nil {
			if c.fn.Ret.Kind != TVoid {
				return errAt(s.Line, 1, "%s must return a value", c.fn.Name)
			}
			return nil
		}
		if err := c.expr(s.X); err != nil {
			return err
		}
		return c.assignable(c.fn.Ret, s.X, s.Line)

	case StBreak, StContinue:
		if c.inLoop == 0 {
			return errAt(s.Line, 1, "break/continue outside loop")
		}
		return nil
	}
	return errAt(s.Line, 1, "unhandled statement")
}

func (c *checker) cond(e *Expr) error {
	if err := c.expr(e); err != nil {
		return err
	}
	if !e.Type.isScalar() {
		return errAt(e.Line, 1, "condition must be scalar, got %s", e.Type)
	}
	return nil
}

// assignable verifies that e can be assigned to type t, inserting the
// implicit long<->double conversion by annotation (lowering checks types).
func (c *checker) assignable(t *Type, e *Expr, line int) error {
	et := e.Type
	if t.same(et) {
		return nil
	}
	if t.Kind == TLong && et.Kind == TDouble || t.Kind == TDouble && et.Kind == TLong {
		return nil // implicit numeric conversion
	}
	if t.Kind == TPtr && et.Kind == TPtr {
		// Permit void*-style mixing through explicit casts only, except
		// assigning identical function-pointer shapes.
		if t.Elem.same(et.Elem) {
			return nil
		}
	}
	if t.Kind == TPtr && e.Kind == ExIntLit && e.IVal == 0 {
		return nil // null pointer constant
	}
	return errAt(line, 1, "cannot assign %s to %s", et, t)
}

// lvalue reports whether e designates a storage location.
func lvalue(e *Expr) bool {
	switch e.Kind {
	case ExIdent:
		return e.sym != nil && e.sym.kind != symFunc && e.sym.kind != symExtern
	case ExIndex, ExMember:
		return true
	case ExUnary:
		return e.Op == "*"
	}
	return false
}

func (c *checker) expr(e *Expr) error {
	switch e.Kind {
	case ExIntLit:
		e.Type = typeLong
		return nil
	case ExFloatLit:
		e.Type = typeDouble
		return nil

	case ExIdent:
		s := c.lookup(e.Name)
		if s == nil {
			return errAt(e.Line, 1, "undefined: %s", e.Name)
		}
		e.sym = s
		e.Type = s.typ
		if s.typ.Kind == TArray {
			e.Type = ptrTo(s.typ.Elem) // decay
		}
		if s.kind == symFunc || s.kind == symExtern {
			e.Type = ptrTo(s.typ) // function designator decays to pointer
		}
		return nil

	case ExUnary:
		if err := c.expr(e.X); err != nil {
			return err
		}
		switch e.Op {
		case "-":
			if !e.X.Type.isScalar() || e.X.Type.Kind == TPtr {
				return errAt(e.Line, 1, "bad operand for unary -: %s", e.X.Type)
			}
			e.Type = e.X.Type
		case "!":
			if !e.X.Type.isScalar() {
				return errAt(e.Line, 1, "bad operand for !")
			}
			e.Type = typeLong
		case "~":
			if !e.X.Type.isInt() {
				return errAt(e.Line, 1, "bad operand for ~")
			}
			e.Type = typeLong
		case "&":
			if !lvalue(e.X) {
				// &func is the function address.
				if e.X.Kind == ExIdent && e.X.sym != nil &&
					(e.X.sym.kind == symFunc || e.X.sym.kind == symExtern) {
					e.Type = e.X.Type
					return nil
				}
				return errAt(e.Line, 1, "cannot take address of this expression")
			}
			if e.X.Kind == ExIdent && (e.X.sym.kind == symLocal || e.X.sym.kind == symParam) {
				e.X.sym.addrTaken = true
			}
			t := e.X.Type
			if e.X.Kind == ExIdent && e.X.sym.typ.Kind == TArray {
				t = e.X.sym.typ // &array is pointer to the array
			}
			e.Type = ptrTo(t)
		case "*":
			if e.X.Type.Kind != TPtr {
				return errAt(e.Line, 1, "cannot dereference %s", e.X.Type)
			}
			e.Type = e.X.Type.Elem
			if e.Type.Kind == TArray {
				e.Type = ptrTo(e.Type.Elem)
			}
		}
		return nil

	case ExBinary:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if err := c.expr(e.Y); err != nil {
			return err
		}
		xt, yt := e.X.Type, e.Y.Type
		switch e.Op {
		case "&&", "||":
			if !xt.isScalar() || !yt.isScalar() {
				return errAt(e.Line, 1, "bad operands for %s", e.Op)
			}
			e.Type = typeLong
		case "==", "!=", "<", "<=", ">", ">=":
			if xt.Kind == TPtr && yt.Kind == TPtr {
				e.Type = typeLong
				return nil
			}
			if !xt.isScalar() || !yt.isScalar() {
				return errAt(e.Line, 1, "bad operands for %s: %s, %s", e.Op, xt, yt)
			}
			e.Type = typeLong
		case "+", "-":
			if xt.Kind == TPtr && yt.isInt() {
				e.Type = xt
				return nil
			}
			if e.Op == "+" && xt.isInt() && yt.Kind == TPtr {
				e.Type = yt
				return nil
			}
			fallthrough
		case "*", "/":
			if xt.Kind == TPtr || yt.Kind == TPtr {
				return errAt(e.Line, 1, "bad pointer arithmetic with %s", e.Op)
			}
			if xt.Kind == TDouble || yt.Kind == TDouble {
				e.Type = typeDouble
			} else {
				e.Type = typeLong
			}
		case "%", "<<", ">>", "&", "|", "^":
			if !xt.isInt() || !yt.isInt() {
				return errAt(e.Line, 1, "bad operands for %s: %s, %s", e.Op, xt, yt)
			}
			e.Type = typeLong
		default:
			return errAt(e.Line, 1, "unknown operator %s", e.Op)
		}
		return nil

	case ExAssign:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if !lvalue(e.X) {
			return errAt(e.Line, 1, "assignment to non-lvalue")
		}
		if err := c.expr(e.Y); err != nil {
			return err
		}
		if e.Op != "=" {
			// Compound assignment: the binary op must type-check.
			if e.X.Type.Kind == TPtr && (e.Op == "+=" || e.Op == "-=") && e.Y.Type.isInt() {
				e.Type = e.X.Type
				return nil
			}
			if !e.X.Type.isScalar() || !e.Y.Type.isScalar() ||
				e.X.Type.Kind == TPtr || e.Y.Type.Kind == TPtr {
				return errAt(e.Line, 1, "bad compound assignment")
			}
			switch e.Op {
			case "%=", "<<=", ">>=", "&=", "|=", "^=":
				if !e.X.Type.isInt() || !e.Y.Type.isInt() {
					return errAt(e.Line, 1, "%s needs integer operands", e.Op)
				}
			}
		}
		if err := c.assignable(e.X.Type, e.Y, e.Line); err != nil {
			return err
		}
		e.Type = e.X.Type
		return nil

	case ExIncDec:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if !lvalue(e.X) || !(e.X.Type.isInt() || e.X.Type.Kind == TPtr) {
			return errAt(e.Line, 1, "bad operand for %s", e.Op)
		}
		e.Type = e.X.Type
		return nil

	case ExCall:
		if err := c.expr(e.X); err != nil {
			return err
		}
		ft := e.X.Type
		if ft.Kind == TPtr && ft.Elem.Kind == TFunc {
			ft = ft.Elem
		}
		if ft.Kind != TFunc {
			return errAt(e.Line, 1, "called object is not a function: %s", e.X.Type)
		}
		if len(e.Args) != len(ft.Params) {
			return errAt(e.Line, 1, "wrong argument count: want %d, got %d", len(ft.Params), len(e.Args))
		}
		for i, a := range e.Args {
			if err := c.expr(a); err != nil {
				return err
			}
			if err := c.assignable(ft.Params[i], a, a.Line); err != nil {
				return err
			}
		}
		e.Type = ft.Ret
		return nil

	case ExIndex:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if err := c.expr(e.Y); err != nil {
			return err
		}
		if e.X.Type.Kind != TPtr || !e.Y.Type.isInt() {
			return errAt(e.Line, 1, "bad index expression: %s[%s]", e.X.Type, e.Y.Type)
		}
		e.Type = e.X.Type.Elem
		if e.Type.Kind == TArray {
			e.Type = ptrTo(e.Type.Elem)
		}
		return nil

	case ExMember:
		if err := c.expr(e.X); err != nil {
			return err
		}
		st := e.X.Type
		if e.Arrow {
			if st.Kind != TPtr || st.Elem.Kind != TStruct {
				return errAt(e.Line, 1, "-> on non-struct-pointer %s", st)
			}
			st = st.Elem
		} else if st.Kind != TStruct {
			return errAt(e.Line, 1, ". on non-struct %s", st)
		}
		f, ok := st.field(e.Name)
		if !ok {
			return errAt(e.Line, 1, "struct %s has no field %s", st.StructName, e.Name)
		}
		e.fieldOff = f.Offset
		e.Type = f.Type
		if f.Type.Kind == TArray {
			e.Type = ptrTo(f.Type.Elem)
		}
		return nil

	case ExCast:
		if err := c.expr(e.X); err != nil {
			return err
		}
		to := e.castTo
		from := e.X.Type
		ok := to.isScalar() && from.isScalar()
		if !ok {
			return errAt(e.Line, 1, "bad cast from %s to %s", from, to)
		}
		e.Type = to
		return nil

	case ExCond:
		if err := c.cond(e.X); err != nil {
			return err
		}
		if err := c.expr(e.Y); err != nil {
			return err
		}
		if err := c.expr(e.Z); err != nil {
			return err
		}
		if !e.Y.Type.same(e.Z.Type) {
			if e.Y.Type.isScalar() && e.Z.Type.isScalar() &&
				e.Y.Type.Kind != TPtr && e.Z.Type.Kind != TPtr {
				if e.Y.Type.Kind == TDouble || e.Z.Type.Kind == TDouble {
					e.Type = typeDouble
					return nil
				}
				e.Type = typeLong
				return nil
			}
			return errAt(e.Line, 1, "mismatched ?: arms: %s vs %s", e.Y.Type, e.Z.Type)
		}
		e.Type = e.Y.Type
		return nil

	case ExSizeof:
		e.Type = typeLong
		return nil
	}
	return errAt(e.Line, 1, "unhandled expression")
}
