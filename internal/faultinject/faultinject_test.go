package faultinject_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/brew"
	"repro/internal/faultinject"
)

// TestDeterminism: the same seed and call sequence yields the same
// decisions; a different seed yields (almost surely) different ones.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		in := faultinject.New(seed).ArmAll(0.3)
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, in.Should(faultinject.Points[i%len(faultinject.Points)]))
		}
		return out
	}
	a, b, c := run(42), run(42), run(43)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed produced different decision sequences")
	}
	if same(a, c) {
		t.Error("different seeds produced identical decision sequences")
	}
}

// TestUnarmedConsumesNoRandomness: checking an unarmed point must not
// perturb the decision stream of armed points.
func TestUnarmedConsumesNoRandomness(t *testing.T) {
	seq := func(noise bool) []bool {
		in := faultinject.New(7).Arm(faultinject.PointPanic, 0.5)
		var out []bool
		for i := 0; i < 100; i++ {
			if noise {
				in.Should(faultinject.PointOpcode) // unarmed
			}
			out = append(out, in.Should(faultinject.PointPanic))
		}
		return out
	}
	a, b := seq(false), seq(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d changed because an unarmed point was checked", i)
		}
	}
}

func TestCounts(t *testing.T) {
	in := faultinject.New(1).Arm(faultinject.PointBudget, 1.0)
	for i := 0; i < 10; i++ {
		if !in.Should(faultinject.PointBudget) {
			t.Fatal("rate-1.0 point did not fire")
		}
	}
	if in.Should(faultinject.PointJITAlloc) {
		t.Fatal("unarmed point fired")
	}
	if got := in.Fired(faultinject.PointBudget); got != 10 {
		t.Errorf("Fired = %d, want 10", got)
	}
	if got := in.TotalFired(); got != 10 {
		t.Errorf("TotalFired = %d, want 10", got)
	}
	if s := in.Summary(); s != "budget:10/10" {
		t.Errorf("Summary = %q", s)
	}
}

// TestHookErrorTypes checks the site-to-point mapping and that injected
// errors classify like the genuine failures they simulate.
func TestHookErrorTypes(t *testing.T) {
	cases := []struct {
		point  faultinject.Point
		site   string
		target error
		reason string
	}{
		{faultinject.PointOpcode, brew.SiteTrace, brew.ErrUnsupported, brew.ReasonUnsupported},
		{faultinject.PointBudget, brew.SiteTrace, brew.ErrTraceTooLong, brew.ReasonTraceBudget},
		{faultinject.PointJITAlloc, brew.SiteInstall, brew.ErrCodeBufferFull, brew.ReasonCodeBuffer},
		{faultinject.PointDispatch, brew.SiteDispatch, brew.ErrCodeBufferFull, brew.ReasonCodeBuffer},
	}
	for _, tc := range cases {
		hook := faultinject.New(0).Arm(tc.point, 1.0).Hook()
		err := hook(tc.site)
		if !errors.Is(err, tc.target) {
			t.Errorf("%s at %s: %v, want %v", tc.point, tc.site, err, tc.target)
		}
		if r := brew.DegradeReason(err); r != tc.reason {
			t.Errorf("%s: DegradeReason = %q, want %q", tc.point, r, tc.reason)
		}
		// The hook passes at sites its point is not mapped to.
		if err := hook(brew.SiteOptimize); err != nil {
			t.Errorf("%s at optimize: %v, want nil", tc.point, err)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("PointPanic hook did not panic")
		}
	}()
	faultinject.New(0).Arm(faultinject.PointPanic, 1.0).Hook()(brew.SiteTrace)
}

// TestConcurrency exercises the injector from many goroutines under -race.
func TestConcurrency(t *testing.T) {
	in := faultinject.New(9).ArmAll(0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.Should(faultinject.Points[i%len(faultinject.Points)])
			}
		}()
	}
	wg.Wait()
	if in.TotalFired() == 0 {
		t.Error("no faults fired across 8000 checks at rate 0.5")
	}
}
