// Package faultinject provides deterministic, seeded fault injection for
// the rewrite pipeline. It drives the brew.Config.Inject seam: an Injector
// is armed with per-point firing rates and decides pseudo-randomly — but
// reproducibly for a given seed — whether each visited injection point
// fails, panics, or passes. The chaos tests (internal/specmgr) use it to
// prove the robustness invariant: under thousands of injected faults the
// system is never wrong and never crashes; at worst it runs the original
// code at generic speed.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/brew"
	"repro/internal/obs"
)

// Point identifies one class of injectable fault.
type Point string

// Injection points.
const (
	// PointJITAlloc simulates code-buffer exhaustion at install time.
	PointJITAlloc Point = "jit-alloc"
	// PointOpcode simulates an unsupported opcode mid-trace.
	PointOpcode Point = "opcode"
	// PointBudget simulates trace-budget exhaustion mid-trace.
	PointBudget Point = "budget"
	// PointPanic panics inside the rewrite pipeline (recovered by brew).
	PointPanic Point = "panic"
	// PointDispatch simulates allocation failure for the guard dispatcher,
	// after the specialized body was already generated.
	PointDispatch Point = "dispatch"
)

// Persistent-store injection points (internal/spstore). The names match
// the spstore.Inject* fault-point strings: the store consults them
// through StoreHook and simulates the corruption itself, so the read
// path faces genuine torn/truncated/flipped bytes.
const (
	// PointStoreTornWrite leaves a half-written record under a live key
	// (crash mid-write without atomic rename).
	PointStoreTornWrite Point = "store-torn-write"
	// PointStoreTruncate cuts the record's tail (checksum and trailing
	// body bytes missing).
	PointStoreTruncate Point = "store-truncate"
	// PointStoreBitFlip flips one bit after the checksum was computed
	// (silent media corruption, typically in the code bytes).
	PointStoreBitFlip Point = "store-bit-flip"
	// PointStoreStaleAssume persists a record whose assumption digests
	// lie — checksum-valid, only revalidation can reject it.
	PointStoreStaleAssume Point = "store-stale-assume"
	// PointStoreRemoteTimeout holds a remote op past its deadline.
	PointStoreRemoteTimeout Point = "store-remote-timeout"
	// PointStoreRemoteErr fails a remote op (5xx-equivalent).
	PointStoreRemoteErr Point = "store-remote-err"
)

// Service injection points (internal/brewsvc). Separate from the
// rewrite-pipeline set so ArmAll keeps existing chaos decision streams.
const (
	// PointAdmission forces the service's admission control to treat the
	// arriving request as over its SLO and shed it (ReasonOverload),
	// regardless of the estimated queue wait. It exercises the overload
	// path deterministically without needing a genuinely saturated shard.
	PointAdmission Point = "admission"
)

// Points lists every rewrite-pipeline injection point (the set ArmAll
// arms; store points are separate so existing chaos suites keep their
// decision streams).
var Points = []Point{PointJITAlloc, PointOpcode, PointBudget, PointPanic, PointDispatch}

// ServicePoints lists every service-layer injection point.
var ServicePoints = []Point{PointAdmission}

// StorePoints lists every persistent-store injection point.
var StorePoints = []Point{
	PointStoreTornWrite, PointStoreTruncate, PointStoreBitFlip,
	PointStoreStaleAssume, PointStoreRemoteTimeout, PointStoreRemoteErr,
}

// Injector makes seeded pass/fail decisions at armed points. It is safe
// for concurrent use; determinism holds for a fixed sequence of Should
// calls (the chaos tests drive it single-threaded per machine).
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rate    map[Point]float64
	checked map[Point]uint64
	fired   map[Point]uint64
}

// New returns an Injector with the given seed and nothing armed.
func New(seed int64) *Injector {
	return &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		rate:    make(map[Point]float64),
		checked: make(map[Point]uint64),
		fired:   make(map[Point]uint64),
	}
}

// Arm sets the firing probability (0..1) for a point. Zero disarms it.
func (in *Injector) Arm(p Point, rate float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	if rate <= 0 {
		delete(in.rate, p)
	} else {
		in.rate[p] = rate
	}
	return in
}

// ArmAll arms every rewrite-pipeline point at the same rate (store
// points are armed individually or via ArmStore).
func (in *Injector) ArmAll(rate float64) *Injector {
	for _, p := range Points {
		in.Arm(p, rate)
	}
	return in
}

// ArmStore arms every persistent-store point at the same rate.
func (in *Injector) ArmStore(rate float64) *Injector {
	for _, p := range StorePoints {
		in.Arm(p, rate)
	}
	return in
}

// Should reports whether the fault at p fires now, advancing the seeded
// stream. Unarmed points never fire and do not consume randomness, so
// arming one point does not perturb another's decision sequence.
func (in *Injector) Should(p Point) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	r, ok := in.rate[p]
	if !ok {
		return false
	}
	in.checked[p]++
	if in.rng.Float64() >= r {
		return false
	}
	in.fired[p]++
	// Flight-recorder correspondence: every fired fault leaves a recorded
	// event (emitted before the fault propagates, so even an injected
	// panic is preceded by its record).
	if obs.Enabled() {
		obs.Emit(obs.Event{Kind: obs.KindFault, Tier: obs.TierNone, Reason: string(p)})
	}
	return true
}

// Fired returns how often the fault at p fired.
func (in *Injector) Fired(p Point) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[p]
}

// TotalFired returns the number of injected faults across all points.
func (in *Injector) TotalFired() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, v := range in.fired {
		n += v
	}
	return n
}

// Summary returns a deterministic "point:fired/checked" listing.
func (in *Injector) Summary() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	pts := make([]string, 0, len(in.checked))
	for p := range in.checked {
		pts = append(pts, string(p))
	}
	sort.Strings(pts)
	s := ""
	for _, p := range pts {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s:%d/%d", p, in.fired[Point(p)], in.checked[Point(p)])
	}
	return s
}

// Hook adapts the Injector to the brew.Config.Inject seam, mapping
// pipeline sites to injection points and returning errors of the same
// types the genuine failures produce (so degradation classification is
// exercised identically):
//
//	SiteTrace    -> PointOpcode (ErrUnsupported), PointBudget
//	             (ErrTraceTooLong), PointPanic (panics)
//	SiteInstall  -> PointJITAlloc (ErrCodeBufferFull)
//	SiteDispatch -> PointDispatch (ErrCodeBufferFull)
func (in *Injector) Hook() func(site string) error {
	return func(site string) error {
		switch site {
		case brew.SiteTrace:
			if in.Should(PointOpcode) {
				return fmt.Errorf("%w: injected unsupported opcode", brew.ErrUnsupported)
			}
			if in.Should(PointBudget) {
				return fmt.Errorf("%w: injected budget exhaustion", brew.ErrTraceTooLong)
			}
			if in.Should(PointPanic) {
				panic("faultinject: injected mid-rewrite panic")
			}
		case brew.SiteInstall:
			if in.Should(PointJITAlloc) {
				return fmt.Errorf("%w: injected allocation failure", brew.ErrCodeBufferFull)
			}
		case brew.SiteDispatch:
			if in.Should(PointDispatch) {
				return fmt.Errorf("%w: injected dispatcher allocation failure", brew.ErrCodeBufferFull)
			}
		}
		return nil
	}
}

// AdmissionHook adapts the Injector to the brewsvc Admission.Inject seam:
// the returned hook makes the seeded PointAdmission decision for each
// admission-controlled request (with the same recorded-event and Fired
// accounting as every other point).
func (in *Injector) AdmissionHook() func() bool {
	return func() bool { return in.Should(PointAdmission) }
}

// StoreHook adapts the Injector to the spstore.Options.Inject seam: the
// store passes its fault-point name, the hook maps it onto the matching
// store Point and makes the seeded decision (with the same recorded-
// event and Fired accounting as every other point). Unknown names never
// fire.
func (in *Injector) StoreHook() func(point string) bool {
	known := map[string]Point{}
	for _, p := range StorePoints {
		known[string(p)] = p
	}
	return func(point string) bool {
		p, ok := known[point]
		if !ok {
			return false
		}
		return in.Should(p)
	}
}
