package asm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestAssembleBasic(t *testing.T) {
	p, err := AssembleAt(`
start:
    movi r1, 10
    movi r2, 32
    add  r1, r2
    ret
`, 0x1000, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["start"] != 0x1000 {
		t.Errorf("start = 0x%x", p.Labels["start"])
	}
	ins, err := isa.DecodeAll(p.Code, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"movi r1, 10", "movi r2, 32", "add r1, r2", "ret"}
	if len(ins) != len(want) {
		t.Fatalf("decoded %d instrs, want %d", len(ins), len(want))
	}
	for i, w := range want {
		if ins[i].String() != w {
			t.Errorf("instr %d: %q, want %q", i, ins[i], w)
		}
	}
}

func TestForwardAndBackwardLabels(t *testing.T) {
	p, err := AssembleAt(`
loop:
    subi r1, 1
    jne loop
    jmp done
    nop
done:
    ret
`, 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := isa.DecodeAll(p.Code, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if ins[1].Target() != 0x1000 {
		t.Errorf("backward target 0x%x", ins[1].Target())
	}
	if ins[2].Target() != p.Labels["done"] {
		t.Errorf("forward target 0x%x, want 0x%x", ins[2].Target(), p.Labels["done"])
	}
}

func TestDataDirectivesAndLabelImmediates(t *testing.T) {
	p, err := AssembleAt(`
    movi r1, tbl
    load r2, [tbl+8]
    fload f1, [r1]
.data
tbl: .quad 7, -9
fv:  .double 2.5
pad: .space 4
b:   .byte 1, 0xff
`, 0x1000, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["tbl"] != 0x4000 || p.Labels["fv"] != 0x4010 || p.Labels["pad"] != 0x4018 || p.Labels["b"] != 0x401c {
		t.Errorf("data labels: %v", p.Labels)
	}
	if len(p.Data) != 8+8+8+4+2 {
		t.Errorf("data size %d", len(p.Data))
	}
	if p.Data[0] != 7 || p.Data[8] != 0xF7 /* -9 LE */ {
		t.Errorf("quad payloads wrong: % x", p.Data[:16])
	}
	ins, err := isa.DecodeAll(p.Code, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].Src.Imm != 0x4000 {
		t.Errorf("movi imm 0x%x", ins[0].Src.Imm)
	}
	if ins[1].Src.Mem.Disp != 0x4008 {
		t.Errorf("load disp 0x%x", ins[1].Src.Mem.Disp)
	}
}

func TestMemOperandForms(t *testing.T) {
	p, err := AssembleAt(`
    load r1, [r2]
    load r1, [r2+8]
    load r1, [r2-8]
    load r1, [r2+r3*8]
    load r1, [r2+r3*8+16]
    load r1, [r3*4+32]
    store [sp-16], r1
    load r1, [0x5000]
`, 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := isa.DecodeAll(p.Code, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"load r1, [r2]",
		"load r1, [r2+8]",
		"load r1, [r2-8]",
		"load r1, [r2+r3*8]",
		"load r1, [r2+r3*8+16]",
		"load r1, [r3*4+32]",
		"store [r15-16], r1",
		"load r1, [0x5000]",
	}
	for i, w := range want {
		if ins[i].String() != w {
			t.Errorf("instr %d: %q, want %q", i, ins[i], w)
		}
	}
}

func TestCCAliases(t *testing.T) {
	p, err := AssembleAt(`
x:
    jlt x
    jae x
    seteq r1
    setgt r2
`, 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := isa.DecodeAll(p.Code, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].CC != isa.CondLT || ins[1].CC != isa.CondAE {
		t.Errorf("jump conds: %v %v", ins[0].CC, ins[1].CC)
	}
	if ins[2].CC != isa.CondEQ || ins[3].CC != isa.CondGT {
		t.Errorf("set conds: %v %v", ins[2].CC, ins[3].CC)
	}
}

func TestEqu(t *testing.T) {
	p, err := AssembleAt(`
.equ N, 500
.equ SZ, 8
    movi r1, N
    load r2, [r3+SZ]
`, 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ins, _ := isa.DecodeAll(p.Code, 0x1000)
	if ins[0].Src.Imm != 500 || ins[1].Src.Mem.Disp != 8 {
		t.Errorf("equ values: %v", ins)
	}
}

func TestFloatImmediate(t *testing.T) {
	p, err := AssembleAt("fmovi f3, -2.5\n", 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ins, _ := isa.DecodeAll(p.Code, 0x1000)
	if ins[0].String() != "fmovi f3, -2.5" {
		t.Errorf("got %q", ins[0])
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"add r1",              // operand count
		"add r1, f2",          // wrong file
		"movi f1, 3",          // wrong file
		"jmp",                 // missing target
		"jmp nosuchlabel",     // undefined label
		"x:\nx:\nret",         // duplicate label
		".data\nadd r1, r2",   // instr in data
		"load r1, [r2+r3+r4]", // too many regs
		"load r1, [r2*3]",     // bad scale
		"setcc r1",            // must use set<cc>
		".space 1, 2",         // bad operand count for space
		".quad zzz",           // bad quad — undefined label
	}
	for _, src := range cases {
		if _, err := AssembleAt(src, 0x1000, 0x4000); !errors.Is(err, ErrSyntax) {
			t.Errorf("src %q: err = %v, want syntax error", src, err)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p, err := AssembleAt(`
; full line comment
# another
   ret ; trailing
`, 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 1 {
		t.Errorf("code size %d", len(p.Code))
	}
}

func TestTwoPassSizeStability(t *testing.T) {
	// A label immediate that would fit in 1 byte if resolved eagerly: wide
	// encoding must keep pass sizes identical.
	src := `
    movi r1, tiny
    ret
.data
tiny: .quad 1
`
	p1, err := AssembleAt(src, 0x1000, 0x10) // label value 0x10 fits in int8
	if err != nil {
		t.Fatal(err)
	}
	p2, err := AssembleAt(src, 0x1000, 0x7000_0000)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Code) != len(p2.Code) {
		t.Errorf("code sizes differ: %d vs %d", len(p1.Code), len(p2.Code))
	}
}

func TestEntry(t *testing.T) {
	p, err := AssembleAt("main: ret\n", 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a, err := p.Entry("main"); err != nil || a != 0x1000 {
		t.Errorf("Entry: 0x%x, %v", a, err)
	}
	if _, err := p.Entry("nope"); err == nil {
		t.Error("missing entry accepted")
	}
	if !strings.Contains(Disassembled(p), "ret") {
		t.Error("Disassembled missing ret")
	}
}
