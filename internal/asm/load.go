package asm

import (
	"fmt"

	"repro/internal/vm"
)

// Image is an assembled program placed into a machine.
type Image struct {
	*Program
	Machine *vm.Machine
}

// Load assembles src, allocates space in the machine's code and data
// segments, and copies both images in. Because instruction sizes depend on
// final addresses, assembly runs twice: once at provisional bases to learn
// image sizes, then at the allocated bases.
func Load(m *vm.Machine, src string) (*Image, error) {
	probe, err := AssembleAt(src, vm.CodeBase, vm.DataBase)
	if err != nil {
		return nil, err
	}
	codeAddr, err := m.CodeAlloc.Alloc(uint64(len(probe.Code)) + 1)
	if err != nil {
		return nil, fmt.Errorf("asm: allocating code: %w", err)
	}
	dataAddr := uint64(0)
	if len(probe.Data) > 0 {
		dataAddr, err = m.DataAlloc.Alloc(uint64(len(probe.Data)))
		if err != nil {
			return nil, fmt.Errorf("asm: allocating data: %w", err)
		}
	}
	p, err := AssembleAt(src, codeAddr, dataAddr)
	if err != nil {
		return nil, err
	}
	if len(p.Code) != len(probe.Code) || len(p.Data) != len(probe.Data) {
		return nil, fmt.Errorf("asm: image size changed between passes (%d/%d -> %d/%d)",
			len(probe.Code), len(probe.Data), len(p.Code), len(p.Data))
	}
	if err := m.Mem.WriteBytes(codeAddr, p.Code); err != nil {
		return nil, err
	}
	if len(p.Data) > 0 {
		if err := m.Mem.WriteBytes(dataAddr, p.Data); err != nil {
			return nil, err
		}
	}
	m.InvalidateICache()
	return &Image{Program: p, Machine: m}, nil
}

// MustEntry returns a label address, panicking on unknown labels; intended
// for tests and examples where the label is a literal.
func (im *Image) MustEntry(label string) uint64 {
	a, err := im.Entry(label)
	if err != nil {
		panic(err)
	}
	return a
}
