// Package asm implements a two-pass textual assembler for VX64. It exists
// for three reasons: hand-written library kernels (the paper's rewriter is
// meant to consume compiled code it does not control), readable tests for
// the emulator and the rewriter, and the cmd/brew-asm tool.
//
// Syntax (one statement per line, ';' or '#' start a comment):
//
//	label:                     ; code label
//	    movi r1, 42
//	    movi r2, buf           ; labels usable as immediates
//	    load r3, [r1+r2*8+16]  ; memory operands
//	    fmovi f1, 2.5
//	    jlt  loop              ; j<cc> conditional jumps
//	    seteq r4               ; set<cc>
//	    call fn
//	    ret
//	.data                      ; switch to data section (".text" switches back)
//	buf: .quad 1, 2, -3
//	fv:  .double 3.14, 0.5
//	sp8: .space 64
//	bs:  .byte 1, 2, 0xff
//	.equ N, 500                ; assemble-time constant
package asm

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// ErrSyntax is wrapped by all assembly-time errors.
var ErrSyntax = errors.New("asm: syntax error")

// Program is the output of AssembleAt: two raw images and the symbol table.
type Program struct {
	CodeBase uint64
	DataBase uint64
	Code     []byte
	Data     []byte
	Labels   map[string]uint64
}

// Disassembled renders the code image as an address-annotated listing.
func Disassembled(p *Program) string {
	return isa.Disassemble(p.Code, p.CodeBase, false)
}

// Entry returns the address of a label, or an error naming it.
func (p *Program) Entry(label string) (uint64, error) {
	a, ok := p.Labels[label]
	if !ok {
		return 0, fmt.Errorf("%w: undefined label %q", ErrSyntax, label)
	}
	return a, nil
}

type section int

const (
	secCode section = iota
	secData
)

// stmt is one parsed source statement retained between passes.
type stmt struct {
	line  int
	sec   section
	label string // non-empty for label definitions
	mnem  string
	args  []string
	// data directive payload sizing (pass 1) and emission (pass 2) are
	// recomputed from mnem/args.
}

type assembler struct {
	stmts  []stmt
	labels map[string]uint64
	equs   map[string]int64
}

// AssembleAt assembles src with the code image based at codeBase and the
// data image at dataBase.
func AssembleAt(src string, codeBase, dataBase uint64) (*Program, error) {
	a := &assembler{labels: make(map[string]uint64), equs: make(map[string]int64)}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(codeBase, dataBase); err != nil {
		return nil, err
	}
	return a.emit(codeBase, dataBase)
}

func (a *assembler) parse(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		s := raw
		if idx := strings.IndexAny(s, ";#"); idx >= 0 {
			s = s[:idx]
		}
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		// Leading label(s).
		for {
			idx := strings.Index(s, ":")
			if idx < 0 {
				break
			}
			name := strings.TrimSpace(s[:idx])
			if !isIdent(name) {
				break
			}
			a.stmts = append(a.stmts, stmt{line: line, label: name})
			s = strings.TrimSpace(s[idx+1:])
		}
		if s == "" {
			continue
		}
		fields := strings.SplitN(s, " ", 2)
		mnem := strings.ToLower(fields[0])
		var args []string
		if len(fields) == 2 {
			args = splitArgs(fields[1])
		}
		if mnem == ".equ" {
			if len(args) != 2 {
				return fmt.Errorf("%w: line %d: .equ needs name, value", ErrSyntax, line)
			}
			v, err := strconv.ParseInt(args[1], 0, 64)
			if err != nil {
				return fmt.Errorf("%w: line %d: .equ value: %v", ErrSyntax, line, err)
			}
			a.equs[args[0]] = v
			continue
		}
		a.stmts = append(a.stmts, stmt{line: line, mnem: mnem, args: args})
	}
	// Assign sections in order.
	cur := secCode
	for i := range a.stmts {
		switch a.stmts[i].mnem {
		case ".data":
			cur = secData
		case ".text", ".code":
			cur = secCode
		}
		a.stmts[i].sec = cur
	}
	return nil
}

// splitArgs splits on top-level commas, keeping bracketed operands intact.
func splitArgs(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, c := range s {
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// layout runs pass 1: compute the address of every label.
func (a *assembler) layout(codeBase, dataBase uint64) error {
	code, data := codeBase, dataBase
	for _, st := range a.stmts {
		pc := &code
		if st.sec == secData {
			pc = &data
		}
		if st.label != "" {
			if _, dup := a.labels[st.label]; dup {
				return fmt.Errorf("%w: line %d: duplicate label %q", ErrSyntax, st.line, st.label)
			}
			a.labels[st.label] = *pc
			continue
		}
		n, err := a.stmtSize(st)
		if err != nil {
			return err
		}
		*pc += uint64(n)
	}
	return nil
}

func (a *assembler) stmtSize(st stmt) (int, error) {
	switch st.mnem {
	case ".data", ".text", ".code":
		return 0, nil
	case ".quad":
		return 8 * len(st.args), nil
	case ".double":
		return 8 * len(st.args), nil
	case ".byte":
		return len(st.args), nil
	case ".space":
		n, err := a.constVal(st.args, st.line)
		return int(n), err
	case ".align":
		// Worst case: alignment-1 bytes of padding. Using worst case in
		// pass 1 would desync passes, so .align is not supported.
		return 0, fmt.Errorf("%w: line %d: .align not supported", ErrSyntax, st.line)
	}
	ins, err := a.buildInstr(st, true)
	if err != nil {
		return 0, err
	}
	return isa.EncodedLen(ins)
}

func (a *assembler) constVal(args []string, line int) (int64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("%w: line %d: need one constant", ErrSyntax, line)
	}
	if v, ok := a.equs[args[0]]; ok {
		return v, nil
	}
	v, err := strconv.ParseInt(args[0], 0, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: line %d: %v", ErrSyntax, line, err)
	}
	return v, nil
}

// emit runs pass 2.
func (a *assembler) emit(codeBase, dataBase uint64) (*Program, error) {
	p := &Program{CodeBase: codeBase, DataBase: dataBase, Labels: a.labels}
	for _, st := range a.stmts {
		if st.label != "" {
			continue
		}
		switch st.mnem {
		case ".data", ".text", ".code":
			continue
		case ".quad":
			for _, arg := range st.args {
				v, _, err := a.intOrLabel(arg, st.line)
				if err != nil {
					return nil, err
				}
				p.Data = appendLE(p.Data, uint64(v), 8)
			}
			continue
		case ".double":
			for _, arg := range st.args {
				f, err := strconv.ParseFloat(arg, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, st.line, err)
				}
				p.Data = appendLE(p.Data, math.Float64bits(f), 8)
			}
			continue
		case ".byte":
			for _, arg := range st.args {
				v, err := strconv.ParseInt(arg, 0, 16)
				if err != nil || v < -128 || v > 255 {
					return nil, fmt.Errorf("%w: line %d: byte %q", ErrSyntax, st.line, arg)
				}
				p.Data = append(p.Data, byte(v))
			}
			continue
		case ".space":
			n, err := a.constVal(st.args, st.line)
			if err != nil {
				return nil, err
			}
			p.Data = append(p.Data, make([]byte, n)...)
			continue
		}
		if st.sec == secData {
			return nil, fmt.Errorf("%w: line %d: instruction in .data section", ErrSyntax, st.line)
		}
		ins, err := a.buildInstr(st, false)
		if err != nil {
			return nil, err
		}
		ins.Addr = codeBase + uint64(len(p.Code))
		p.Code, err = isa.AppendEncode(p.Code, ins)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, st.line, err)
		}
	}
	return p, nil
}

func appendLE(b []byte, v uint64, n int) []byte {
	for i := 0; i < n; i++ {
		b = append(b, byte(v))
		v >>= 8
	}
	return b
}

// buildInstr turns a parsed statement into an isa.Instr. In pass 1
// (sizing=true) undefined labels resolve to a wide placeholder.
func (a *assembler) buildInstr(st stmt, sizing bool) (isa.Instr, error) {
	mnem := st.mnem
	bad := func(format string, args ...any) (isa.Instr, error) {
		return isa.Instr{}, fmt.Errorf("%w: line %d: %s", ErrSyntax, st.line, fmt.Sprintf(format, args...))
	}

	// j<cc> and set<cc> aliases.
	var cc isa.Cond
	hasCC := false
	if strings.HasPrefix(mnem, "j") && mnem != "jmp" && mnem != "jmpr" {
		if c, ok := isa.CondFromName(mnem[1:]); ok {
			cc, hasCC = c, true
			mnem = "jcc"
		}
	}
	if strings.HasPrefix(mnem, "set") && mnem != "setcc" {
		if c, ok := isa.CondFromName(mnem[3:]); ok {
			cc, hasCC = c, true
			mnem = "setcc"
		}
	}

	op, ok := isa.OpcodeFromName(mnem)
	if !ok {
		return bad("unknown mnemonic %q", st.mnem)
	}
	info := isa.Info(op)
	ins := isa.Instr{Op: op, CC: cc}

	nargs := map[isa.Format]int{
		isa.FNone: 0, isa.FR: 1, isa.FRR: 2, isa.FRI: 2, isa.FRM: 2,
		isa.FMR: 2, isa.FRel: 1, isa.FCC: 1, isa.FCCR: 1,
	}[info.Format]
	if (op == isa.JCC || op == isa.SETCC) && !hasCC {
		return bad("use j<cc>/set<cc> spelling")
	}
	if len(st.args) != nargs {
		return bad("%s takes %d operand(s), got %d", st.mnem, nargs, len(st.args))
	}

	reg := func(s string, file isa.RegFile) (isa.Reg, error) {
		r, f, err := parseReg(s)
		if err != nil {
			return 0, err
		}
		if f != file {
			return 0, fmt.Errorf("register %s has wrong file for %s", s, st.mnem)
		}
		return r, nil
	}

	switch info.Format {
	case isa.FNone:
		return ins, nil

	case isa.FR:
		r, err := reg(st.args[0], info.DstFile)
		if err != nil {
			return bad("%v", err)
		}
		ins.Dst = isa.Operand{Kind: kindFor(info.DstFile), Reg: r}
		return ins, nil

	case isa.FRR:
		d, err := reg(st.args[0], info.DstFile)
		if err != nil {
			return bad("%v", err)
		}
		s, err := reg(st.args[1], info.SrcFile)
		if err != nil {
			return bad("%v", err)
		}
		ins.Dst = isa.Operand{Kind: kindFor(info.DstFile), Reg: d}
		ins.Src = isa.Operand{Kind: kindFor(info.SrcFile), Reg: s}
		return ins, nil

	case isa.FRI:
		d, err := reg(st.args[0], info.DstFile)
		if err != nil {
			return bad("%v", err)
		}
		ins.Dst = isa.Operand{Kind: kindFor(info.DstFile), Reg: d}
		if op == isa.FMOVI {
			f, ferr := strconv.ParseFloat(st.args[1], 64)
			if ferr != nil {
				return bad("float immediate: %v", ferr)
			}
			ins.Src = isa.FImmOp(f)
			return ins, nil
		}
		v, isLabel, err := a.resolve(st.args[1], sizing)
		if err != nil {
			return bad("%v", err)
		}
		ins.Src = isa.ImmOp(v)
		ins.Wide = isLabel
		return ins, nil

	case isa.FRM:
		d, err := reg(st.args[0], info.DstFile)
		if err != nil {
			return bad("%v", err)
		}
		m, err := a.parseMem(st.args[1], sizing)
		if err != nil {
			return bad("%v", err)
		}
		ins.Dst = isa.Operand{Kind: kindFor(info.DstFile), Reg: d}
		ins.Src = isa.MemOp(m)
		return ins, nil

	case isa.FMR:
		m, err := a.parseMem(st.args[0], sizing)
		if err != nil {
			return bad("%v", err)
		}
		s, err := reg(st.args[1], info.DstFile)
		if err != nil {
			return bad("%v", err)
		}
		ins.Dst = isa.MemOp(m)
		ins.Src = isa.Operand{Kind: kindFor(info.DstFile), Reg: s}
		return ins, nil

	case isa.FRel, isa.FCC:
		v, _, err := a.resolve(st.args[0], sizing)
		if err != nil {
			return bad("%v", err)
		}
		ins.Dst = isa.ImmOp(v)
		return ins, nil

	case isa.FCCR:
		r, err := reg(st.args[0], isa.RFInt)
		if err != nil {
			return bad("%v", err)
		}
		ins.Dst = isa.RegOp(r)
		return ins, nil
	}
	return bad("unhandled format")
}

// resolve evaluates an immediate: a number, an .equ constant, or a label.
// The second result reports whether the value came from a label (and must
// therefore be encoded wide for stable sizing).
func (a *assembler) resolve(s string, sizing bool) (int64, bool, error) {
	if v, ok := a.equs[s]; ok {
		return v, false, nil
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, false, nil
	}
	if !isIdent(s) {
		return 0, false, fmt.Errorf("bad immediate %q", s)
	}
	if v, ok := a.labels[s]; ok {
		return int64(v), true, nil
	}
	if sizing {
		return 0x7FFF_0000, true, nil // wide placeholder
	}
	return 0, false, fmt.Errorf("undefined label %q", s)
}

func (a *assembler) intOrLabel(s string, line int) (int64, bool, error) {
	v, isLabel, err := a.resolve(s, false)
	if err != nil {
		return 0, false, fmt.Errorf("%w: line %d: %v", ErrSyntax, line, err)
	}
	return v, isLabel, nil
}

// parseMem parses "[base + index*scale + disp]".
func (a *assembler) parseMem(s string, sizing bool) (isa.MemRef, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return isa.MemRef{}, fmt.Errorf("bad memory operand %q", s)
	}
	m := isa.MemRef{Base: isa.RegNone, Index: isa.RegNone, Scale: 1}
	var disp int64
	for _, term := range splitTerms(s[1 : len(s)-1]) {
		t := strings.TrimSpace(term.text)
		if t == "" {
			return isa.MemRef{}, fmt.Errorf("empty term in %q", s)
		}
		if r, file, err := parseReg(t); err == nil {
			if file != isa.RFInt {
				return isa.MemRef{}, fmt.Errorf("non-integer register %q in address", t)
			}
			if term.neg {
				return isa.MemRef{}, fmt.Errorf("negated register in %q", s)
			}
			switch {
			case !m.HasBase():
				m.Base = r
			case !m.HasIndex():
				m.Index, m.Scale = r, 1
			default:
				return isa.MemRef{}, fmt.Errorf("too many registers in %q", s)
			}
			continue
		}
		if i := strings.IndexByte(t, '*'); i >= 0 {
			r, file, err := parseReg(strings.TrimSpace(t[:i]))
			if err != nil || file != isa.RFInt {
				return isa.MemRef{}, fmt.Errorf("bad index %q", t)
			}
			sc, err := strconv.Atoi(strings.TrimSpace(t[i+1:]))
			if err != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
				return isa.MemRef{}, fmt.Errorf("bad scale in %q", t)
			}
			if m.HasIndex() || term.neg {
				return isa.MemRef{}, fmt.Errorf("bad index use in %q", s)
			}
			m.Index, m.Scale = r, uint8(sc)
			continue
		}
		v, isLabel, err := a.resolve(t, sizing)
		if err != nil {
			return isa.MemRef{}, err
		}
		if isLabel {
			m.Wide = true
		}
		if term.neg {
			v = -v
		}
		disp += v
	}
	if disp < math.MinInt32 || disp > math.MaxInt32 {
		return isa.MemRef{}, fmt.Errorf("displacement %d out of range", disp)
	}
	m.Disp = int32(disp)
	return m, nil
}

type term struct {
	text string
	neg  bool
}

func splitTerms(s string) []term {
	var out []term
	neg := false
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			if t := strings.TrimSpace(s[start:i]); t != "" {
				out = append(out, term{t, neg})
			} else if neg {
				// "--" or "+-": fold into pending sign.
				out = append(out, term{"", neg})
			}
			neg = s[i] == '-'
			start = i + 1
		}
	}
	out = append(out, term{strings.TrimSpace(s[start:]), neg})
	return out
}

func parseReg(s string) (isa.Reg, isa.RegFile, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "sp" {
		return isa.SP, isa.RFInt, nil
	}
	if len(s) < 2 {
		return 0, isa.RFNone, fmt.Errorf("not a register: %q", s)
	}
	var file isa.RegFile
	var limit int
	switch s[0] {
	case 'r':
		file, limit = isa.RFInt, isa.NumRegs
	case 'f':
		file, limit = isa.RFFloat, isa.NumRegs
	case 'v':
		file, limit = isa.RFVec, isa.NumVRegs
	default:
		return 0, isa.RFNone, fmt.Errorf("not a register: %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= limit {
		return 0, isa.RFNone, fmt.Errorf("not a register: %q", s)
	}
	return isa.Reg(n), file, nil
}

func kindFor(f isa.RegFile) isa.OpKind {
	switch f {
	case isa.RFFloat:
		return isa.KindFReg
	case isa.RFVec:
		return isa.KindVReg
	default:
		return isa.KindReg
	}
}
