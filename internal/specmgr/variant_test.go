package specmgr_test

import (
	"testing"

	"repro/internal/brew"
	"repro/internal/mem"
	"repro/internal/minc"
	"repro/internal/specmgr"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// polySrc is the polymorphic-caller kernel: the loop bound k is the value
// the variant table dispatches on.
const polySrc = `
long poly(long x, long k) {
    long r = 1;
    for (long i = 0; i < k; i++) { r = r * x + i; }
    return r;
}
`

func loadPoly(t *testing.T, m *vm.Machine) uint64 {
	t.Helper()
	l, err := minc.CompileAndLink(m, polySrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := l.FuncAddr("poly")
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

func polyRef(x, k uint64) uint64 {
	r := uint64(1)
	for i := uint64(0); i < k; i++ {
		r = r*x + i
	}
	return r
}

// addPolyVariant traces poly under cfg/guards and installs the outcome as
// a sibling variant in e's table (nil guards: the unconditional variant).
func addPolyVariant(t *testing.T, m *vm.Machine, mgr *specmgr.Manager, e *specmgr.Entry, cfg *brew.Config, guards []brew.ParamGuard) *specmgr.Variant {
	t.Helper()
	if cfg == nil {
		cfg = brew.NewConfig()
	}
	out, err := brew.Do(m, &brew.Request{
		Config: cfg, Fn: e.Fn(), Guards: guards, Args: []uint64{0, 0},
		Mode: brew.ModeDegrade,
	})
	v, ok := mgr.InstallVariant(e, cfg, guards, []uint64{0, 0}, nil, out, err)
	if !ok || v == nil {
		t.Fatalf("InstallVariant(%v): ok=%v err=%v", guards, ok, err)
	}
	return v
}

// TestVariantTableDispatch: three guarded variants behind one stub; the
// inline-cache chain routes each hot class to its body, unspecialized
// values fall through to the original (and to an unconditional sibling
// once one is installed), and releasing the entry returns every JIT byte.
func TestVariantTableDispatch(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	free0 := m.JITFreeBytes()

	mgr := specmgr.New(m, specmgr.Policy{})
	e, err := mgr.SpecializeGuarded(brew.NewConfig(), fn,
		[]brew.ParamGuard{{Param: 2, Value: 3}}, []uint64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v3 := e.VariantFor([]uint64{0, 3})
	if v3 == nil || !v3.Live() {
		t.Fatal("no live variant for k=3 after SpecializeGuarded")
	}
	v5 := addPolyVariant(t, m, mgr, e, nil, []brew.ParamGuard{{Param: 2, Value: 5}})
	v9 := addPolyVariant(t, m, mgr, e, nil, []brew.ParamGuard{{Param: 2, Value: 9}})

	if n := len(e.Variants()); n != 3 {
		t.Fatalf("live variants = %d, want 3", n)
	}
	if lo, hi := e.DispatchRange(); hi <= lo {
		t.Fatalf("no dispatch chain: [%#x,%#x)", lo, hi)
	}
	if got := e.VariantFor([]uint64{1, 5}); got != v5 {
		t.Fatalf("VariantFor(k=5) = %p, want v5 %p", got, v5)
	}
	if got := e.VariantFor([]uint64{1, 9}); got != v9 {
		t.Fatalf("VariantFor(k=9) = %p, want v9 %p", got, v9)
	}
	if got := e.VariantFor([]uint64{1, 7}); got != nil {
		t.Fatalf("VariantFor(k=7) = %p, want nil (full miss)", got)
	}

	for _, x := range []uint64{0, 2, 7} {
		for _, k := range []uint64{0, 3, 5, 7, 9, 12} {
			got, err := e.Call(x, k)
			if err != nil {
				t.Fatal(err)
			}
			if want := polyRef(x, k); got != want {
				t.Fatalf("poly(%d,%d) = %d, want %d", x, k, got, want)
			}
		}
	}

	// Per-variant accounting mirrors the chain's dispatch decisions: one
	// hit per x-value for each guarded class, misses for everything that
	// fell past it.
	for _, c := range []struct {
		v *specmgr.Variant
		k uint64
	}{{v3, 3}, {v5, 5}, {v9, 9}} {
		if h := c.v.Guarded().Hits(); h != 3 {
			t.Errorf("variant k=%d hits = %d, want 3", c.k, h)
		}
		if ms := c.v.Guarded().Misses(); ms == 0 {
			t.Errorf("variant k=%d recorded no misses", c.k)
		}
		if calls, _ := c.v.Hotness(); calls != 3 {
			t.Errorf("variant k=%d hot calls = %d, want 3", c.k, calls)
		}
	}

	// An unconditional sibling becomes the chain's fallthrough target.
	vu := addPolyVariant(t, m, mgr, e, nil, nil)
	if got := e.VariantFor([]uint64{1, 7}); got != vu {
		t.Fatalf("VariantFor(k=7) = %p, want unconditional %p", got, vu)
	}
	got, err := e.Call(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := polyRef(4, 7); got != want {
		t.Fatalf("poly(4,7) via fallthrough = %d, want %d", got, want)
	}
	if calls, _ := vu.Hotness(); calls != 1 {
		t.Errorf("unconditional variant hot calls = %d, want 1", calls)
	}

	mgr.Release(e)
	if free := m.JITFreeBytes(); free != free0 {
		t.Fatalf("JIT leak after Release: free %d, baseline %d", free, free0)
	}
}

// TestVariantStormDemotesOnlyOffender: a guard-miss storm demotes only the
// variant whose guards keep missing; its siblings keep serving and the
// entry deoptimizes only when the last live variant goes.
func TestVariantStormDemotesOnlyOffender(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	free0 := m.JITFreeBytes()

	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	dem0 := telemetry.Default.Counter("specmgr.variant_demotions").Value()
	deo0 := telemetry.Default.Counter("specmgr.deopts").Value()

	mgr := specmgr.New(m, specmgr.Policy{GuardMissLimit: 3})
	e, err := mgr.SpecializeGuarded(brew.NewConfig(), fn,
		[]brew.ParamGuard{{Param: 2, Value: 3}}, []uint64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v3 := e.VariantFor([]uint64{0, 3})
	v5 := addPolyVariant(t, m, mgr, e, nil, []brew.ParamGuard{{Param: 2, Value: 5}})

	call := func(x, k uint64) {
		t.Helper()
		got, err := e.Call(x, k)
		if err != nil {
			t.Fatal(err)
		}
		if want := polyRef(x, k); got != want {
			t.Fatalf("poly(%d,%d) = %d, want %d", x, k, got, want)
		}
	}

	// k=5 traffic misses v3's guard every call; at the limit only v3 goes.
	call(2, 5)
	call(2, 5)
	if !v3.Live() {
		t.Fatal("v3 demoted before the miss limit")
	}
	call(2, 5)
	if v3.Live() {
		t.Fatal("v3 still live after 3 consecutive misses")
	}
	if !v5.Live() {
		t.Fatal("sibling v5 demoted by v3's storm")
	}
	if d, _ := e.Deopted(); d {
		t.Fatal("entry deopted while a sibling is live")
	}

	// The demoted class falls through to the original; the survivor still
	// serves (and its streak resets on the hit).
	call(2, 3)
	call(2, 5)

	// Storm the survivor: the last demotion deoptimizes the entry.
	call(2, 7)
	call(2, 7)
	call(2, 7)
	if v5.Live() {
		t.Fatal("v5 still live after its own storm")
	}
	if d, reason := e.Deopted(); !d || reason != specmgr.DeoptGuardStorm {
		t.Fatalf("deopted=%v reason=%q, want true/%q", d, reason, specmgr.DeoptGuardStorm)
	}
	call(2, 3)
	call(2, 5)
	call(2, 7)

	if d := telemetry.Default.Counter("specmgr.variant_demotions").Value() - dem0; d != 2 {
		t.Errorf("variant demotions = %d, want 2", d)
	}
	if d := telemetry.Default.Counter("specmgr.deopts").Value() - deo0; d != 1 {
		t.Errorf("entry deopts = %d, want 1 (only the last demotion)", d)
	}

	mgr.Release(e)
	if free := m.JITFreeBytes(); free != free0 {
		t.Fatalf("JIT leak after Release: free %d, baseline %d", free, free0)
	}
}

// TestVariantWatchDemotesOnlyOffender: an assumption-violating store
// demotes only the variant whose frozen range was hit; a sibling variant
// without that assumption keeps its specialized body.
func TestVariantWatchDemotesOnlyOffender(t *testing.T) {
	m, w := newStencil(t)
	poke := loadPoke(t, m)
	mgr := specmgr.New(m, specmgr.Policy{})

	cfgA, argsA := w.ApplyConfig() // freezes the S5 stencil descriptor
	e, err := mgr.SpecializeGuarded(cfgA, w.Apply,
		[]brew.ParamGuard{{Param: 2, Value: gridXS}}, argsA, nil)
	if err != nil {
		t.Fatal(err)
	}
	vA := e.VariantFor([]uint64{0, gridXS, 0})
	if vA == nil {
		t.Fatal("no variant for the frozen-descriptor class")
	}

	// Sibling for a narrower row stride, with no frozen memory.
	const xsB = 8
	cfgB := brew.NewConfig()
	outB, errB := brew.Do(m, &brew.Request{
		Config: cfgB, Fn: w.Apply,
		Guards: []brew.ParamGuard{{Param: 2, Value: xsB}},
		Args:   []uint64{0, 0, 0}, Mode: brew.ModeDegrade,
	})
	vB, ok := mgr.InstallVariant(e, cfgB,
		[]brew.ParamGuard{{Param: 2, Value: xsB}}, []uint64{0, 0, 0}, nil, outB, errB)
	if !ok {
		t.Fatalf("sibling install failed: %v", errB)
	}

	// Mutate the frozen descriptor through the emulated store path.
	if _, err := m.CallFloat(poke, []uint64{w.S5 + 8}, []float64{-0.5}); err != nil {
		t.Fatal(err)
	}
	if vA.Live() {
		t.Fatal("frozen-descriptor variant survived the store")
	}
	if !vB.Live() {
		t.Fatal("sibling without the assumption was demoted too")
	}
	if d, _ := e.Deopted(); d {
		t.Fatal("entry deopted while a sibling is live")
	}

	// The demoted class falls through to the original, which re-reads the
	// mutated descriptor; the sibling still serves its class.
	cellA := w.M1 + uint64((gridXS+1)*8)
	wantA, err := m.CallFloat(w.Apply, []uint64{cellA, gridXS, w.S5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := e.CallFloat([]uint64{cellA, gridXS, w.S5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotA != wantA {
		t.Fatalf("demoted class = %g, want %g (stale code survived)", gotA, wantA)
	}

	cellB := w.M1 + uint64((xsB+1)*8)
	wantB, err := m.CallFloat(w.Apply, []uint64{cellB, xsB, w.S5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := e.CallFloat([]uint64{cellB, xsB, w.S5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotB != wantB {
		t.Fatalf("sibling class = %g, want %g", gotB, wantB)
	}
}

// TestVariantLRUWithinTable: installing past Policy.MaxVariants evicts the
// least recently dispatched variant — not the whole entry.
func TestVariantLRUWithinTable(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	free0 := m.JITFreeBytes()

	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	ev0 := telemetry.Default.Counter("specmgr.variant_evictions").Value()

	mgr := specmgr.New(m, specmgr.Policy{MaxVariants: 2})
	e, err := mgr.SpecializeGuarded(brew.NewConfig(), fn,
		[]brew.ParamGuard{{Param: 2, Value: 3}}, []uint64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v3 := e.VariantFor([]uint64{0, 3})
	v5 := addPolyVariant(t, m, mgr, e, nil, []brew.ParamGuard{{Param: 2, Value: 5}})

	// Touch v3 so v5 is the cold one.
	if got, _ := e.Call(2, 3); got != polyRef(2, 3) {
		t.Fatalf("poly(2,3) = %d", got)
	}

	v9 := addPolyVariant(t, m, mgr, e, nil, []brew.ParamGuard{{Param: 2, Value: 9}})
	if v5.Live() {
		t.Fatal("cold variant v5 survived the table limit")
	}
	if !v3.Live() || !v9.Live() {
		t.Fatal("hot variant or the fresh install was evicted instead")
	}
	if n := len(e.Variants()); n != 2 {
		t.Fatalf("live variants = %d, want 2", n)
	}
	if d := telemetry.Default.Counter("specmgr.variant_evictions").Value() - ev0; d != 1 {
		t.Errorf("variant evictions = %d, want 1", d)
	}

	// The evicted class falls through and stays correct.
	for _, k := range []uint64{3, 5, 9} {
		got, err := e.Call(2, k)
		if err != nil {
			t.Fatal(err)
		}
		if want := polyRef(2, k); got != want {
			t.Fatalf("poly(2,%d) = %d, want %d", k, got, want)
		}
	}

	mgr.Release(e)
	if free := m.JITFreeBytes(); free != free0 {
		t.Fatalf("JIT leak after Release: free %d, baseline %d", free, free0)
	}
}

// TestVariantSameKeyReplacement: installing over an existing guard key
// swaps that variant's body in place (same Variant identity, new tier)
// instead of growing the table.
func TestVariantSameKeyReplacement(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	free0 := m.JITFreeBytes()

	mgr := specmgr.New(m, specmgr.Policy{})
	quick := brew.NewConfig()
	quick.Effort = brew.EffortQuick
	e, err := mgr.SpecializeGuarded(quick, fn,
		[]brew.ParamGuard{{Param: 2, Value: 3}}, []uint64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := e.VariantFor([]uint64{0, 3})
	if v.Tier() != brew.EffortQuick {
		t.Fatalf("fresh variant tier = %v, want quick", v.Tier())
	}

	v2 := addPolyVariant(t, m, mgr, e, brew.NewConfig(),
		[]brew.ParamGuard{{Param: 2, Value: 3}})
	if v2 != v {
		t.Fatal("same-key install created a new variant instead of replacing")
	}
	if !v.Live() || v.Tier() != brew.EffortFull {
		t.Fatalf("replaced variant live=%v tier=%v, want live/full", v.Live(), v.Tier())
	}
	if n := len(e.Variants()); n != 1 {
		t.Fatalf("live variants = %d, want 1", n)
	}
	if e.Tier() != brew.EffortFull {
		t.Fatalf("entry tier = %v, want full", e.Tier())
	}

	for _, k := range []uint64{3, 4} {
		got, err := e.Call(2, k)
		if err != nil {
			t.Fatal(err)
		}
		if want := polyRef(2, k); got != want {
			t.Fatalf("poly(2,%d) = %d, want %d", k, got, want)
		}
	}

	mgr.Release(e)
	if free := m.JITFreeBytes(); free != free0 {
		t.Fatalf("JIT leak after Release: free %d, baseline %d", free, free0)
	}
}

// TestTierReportsServedCode: Entry.Tier reports the tier of the code the
// stable address actually serves — the original (full-effort semantics)
// while pending or after a deopt, the primary variant's tier otherwise.
func TestTierReportsServedCode(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)
	mgr := specmgr.New(m, specmgr.Policy{})

	quick := brew.NewConfig()
	quick.Effort = brew.EffortQuick
	e, err := mgr.Specialize(quick, fn, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Tier() != brew.EffortQuick {
		t.Fatalf("live quick entry Tier = %v, want quick", e.Tier())
	}
	mgr.Deopt(e, specmgr.DeoptManual)
	if e.Tier() != brew.EffortFull {
		t.Fatalf("deopted entry Tier = %v, want full (serves the original)", e.Tier())
	}

	quick2 := brew.NewConfig()
	quick2.Effort = brew.EffortQuick
	p := mgr.AdoptPending(quick2, fn, nil, nil, nil)
	if p.Tier() != brew.EffortFull {
		t.Fatalf("pending entry Tier = %v, want full (serves the original)", p.Tier())
	}
	out, rerr := brew.Do(m, &brew.Request{
		Config: quick2, Fn: fn, Mode: brew.ModeDegrade,
	})
	if !mgr.Promote(p, out, rerr) {
		t.Fatalf("Promote failed: %v", rerr)
	}
	if p.Tier() != brew.EffortQuick {
		t.Fatalf("promoted entry Tier = %v, want quick", p.Tier())
	}
}

// TestStubFailureCountsDegraded: a successful rewrite whose 5-byte stub
// allocation fails cannot be served, so it must count as degraded, not as
// a specialization (regression: the counter decision used to happen
// before the stub outcome was known).
func TestStubFailureCountsDegraded(t *testing.T) {
	m := vm.MustNew()
	fn := loadPoly(t, m)

	// Probe the body size, then size the code buffer so the body fits
	// exactly and the stub allocation behind it must fail.
	probe, err := brew.Rewrite(m, brew.NewConfig(), fn, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FreeJIT(probe.Addr); err != nil {
		t.Fatal(err)
	}
	bodySize := (uint64(probe.CodeSize) + 15) &^ 15
	m.JITAlloc = mem.NewAllocator(vm.JITBase, bodySize, 16)

	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	spec0 := telemetry.Default.Counter("specmgr.specializations").Value()
	deg0 := telemetry.Default.Counter("specmgr.degraded").Value()

	mgr := specmgr.New(m, specmgr.Policy{})
	e, err := mgr.Specialize(brew.NewConfig(), fn, nil, nil)
	if err != nil {
		t.Fatalf("Specialize: %v (the rewrite itself must succeed)", err)
	}
	if !e.Degraded() {
		t.Fatal("entry not degraded after stub-install failure")
	}
	if _, reason := e.Deopted(); reason != brew.ReasonCodeBuffer {
		t.Fatalf("reason = %q, want %q", reason, brew.ReasonCodeBuffer)
	}
	if e.Addr() != fn {
		t.Fatalf("Addr = %#x, want original %#x", e.Addr(), fn)
	}

	if d := telemetry.Default.Counter("specmgr.specializations").Value() - spec0; d != 0 {
		t.Errorf("specializations = %d, want 0", d)
	}
	if d := telemetry.Default.Counter("specmgr.degraded").Value() - deg0; d != 1 {
		t.Errorf("degraded = %d, want 1", d)
	}

	// The body was given back when the stub failed.
	if free := m.JITAlloc.FreeBytes(); free != bodySize {
		t.Errorf("JIT free = %d, want %d (body leaked)", free, bodySize)
	}

	got, err := e.Call(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := polyRef(3, 4); got != want {
		t.Fatalf("degraded call = %d, want %d", got, want)
	}
}
