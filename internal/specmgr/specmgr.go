// Package specmgr manages the lifetime of runtime specializations: it is
// the self-healing layer above the BREW rewriter. Every specialization is
// registered together with the assumptions it was built under — the frozen
// memory regions (SetMemRange plus ParamPtrToKnown pointees) and guarded
// parameter values — and the manager arms VM write-watchpoints over the
// frozen ranges. A store into a frozen region deoptimizes the stale code
// before the next call through the entry returns: the entry's patchable
// stub is atomically redirected to the original function, and on the next
// managed call the entry may lazily re-specialize against the new memory
// contents.
//
// Together with brew.RewriteOrDegrade this yields the robustness
// invariant the chaos tests (chaos_test.go) enforce: the system is never
// wrong and never crashes; at worst it runs the original code at generic
// speed.
package specmgr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/brew"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Deoptimization reasons.
const (
	// DeoptAssumption: a store hit a frozen memory region.
	DeoptAssumption = "assumption-violated"
	// DeoptGuardStorm: Policy.GuardMissLimit consecutive guard misses.
	DeoptGuardStorm = "guard-miss-storm"
	// DeoptManual: explicit Manager.Deopt call.
	DeoptManual = "manual"
)

// ErrReleased reports a managed call through a released entry.
var ErrReleased = errors.New("specmgr: entry released")

// Policy configures a Manager.
type Policy struct {
	// MaxLive bounds live entries; exceeding it evicts the least recently
	// used entry (releasing its code-buffer space). 0 means unlimited.
	MaxLive int
	// GuardMissLimit deoptimizes a guarded entry after this many
	// consecutive guard misses observed by Entry.Call/CallFloat (the
	// specialized variant is evidently no longer the hot case). 0 disables.
	GuardMissLimit uint64
	// Respecialize re-runs the rewrite lazily on the first managed call
	// after a deoptimization, against the current memory contents. One
	// attempt per deoptimization: a failed attempt leaves the entry
	// degraded until the next deopt.
	Respecialize bool
}

// Manager tracks specializations for one machine. All methods are safe for
// concurrent use with each other while the machine is not executing;
// managed calls themselves must come from one goroutine at a time (the
// machine is single-threaded).
type Manager struct {
	m   *vm.Machine
	pol Policy

	mu      sync.Mutex
	entries map[uint64]*Entry // original entry address -> live entry
	clock   uint64
}

// Entry is one managed specialization. Its stable address (Addr) is a
// small patchable stub, so deoptimization retargets every caller at once.
type Entry struct {
	mgr *Manager
	fn  uint64

	// Hotness counters (tiered rewriting): hotCalls is the cheap
	// stub-side counter bumped on every managed call; hotSamples counts
	// sampling-profiler hits attributed to this entry's code (each sample
	// represents one profiler interval of cycles). Atomic so the call
	// path and the profiler feed never take mgr.mu.
	hotCalls   atomic.Uint64
	hotSamples atomic.Uint64

	// Everything below is guarded by mgr.mu.
	stub       uint64 // patchable JMP, 0 if stub allocation failed
	res        *brew.Result
	guarded    *brew.GuardedResult
	cfg        *brew.Config
	args       []uint64
	fargs      []float64
	guards     []brew.ParamGuard
	watches    []*vm.Watch
	tier       brew.Effort // effort the current code was rewritten at
	pending    bool        // adopted, awaiting Promote (stub routes to fn meanwhile)
	deopted    bool
	reason     string // last deopt (or degradation) reason
	respecDone bool   // one respecialization attempt per deopt
	released   bool
	lastUse    uint64
}

// NoteCall bumps the entry's call-hotness counter. Entry.Call/CallFloat
// do this automatically; hosts dispatching through the raw stub address
// call it from their own dispatch path (the "cheap stub-side counter").
func (e *Entry) NoteCall() { e.hotCalls.Add(1) }

// NoteSample attributes one sampling-profiler hit to the entry (the
// profiler fires every Interval cycles, so samples are a cycle-weighted
// hotness signal covering calls that bypass Entry.Call).
func (e *Entry) NoteSample() { e.hotSamples.Add(1) }

// Hotness returns the entry's accumulated hotness counters.
func (e *Entry) Hotness() (calls, samples uint64) {
	return e.hotCalls.Load(), e.hotSamples.Load()
}

// Tier returns the effort the entry's current specialized code was
// rewritten at (EffortFull for pending/degraded entries running the
// original function — the tier is meaningful only alongside Result).
func (e *Entry) Tier() brew.Effort {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	return e.tier
}

// New returns a Manager for machine m.
func New(m *vm.Machine, pol Policy) *Manager {
	return &Manager{m: m, pol: pol, entries: make(map[uint64]*Entry)}
}

// Len returns the number of live entries.
func (g *Manager) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.entries)
}

// Lookup returns the live entry for the function at fn, or nil.
func (g *Manager) Lookup(fn uint64) *Entry {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.entries[fn]
}

// Specialize rewrites fn under cfg and registers the result. It never
// fails into an unusable state: on any rewrite failure the returned entry
// transparently runs the original function (Result semantics of
// brew.RewriteOrDegrade) and the error reports the cause. cfg, args and
// fargs are retained for respecialization and must not be mutated by the
// caller afterwards.
func (g *Manager) Specialize(cfg *brew.Config, fn uint64, args []uint64, fargs []float64) (*Entry, error) {
	out, err := brew.Do(g.m, &brew.Request{
		Config: cfg, Fn: fn, Args: args, FArgs: fargs, Mode: brew.ModeDegrade,
	})
	e := &Entry{mgr: g, fn: fn, cfg: cfg, args: args, fargs: fargs, res: out.Result, tier: cfg.Effort}
	if out.Degraded {
		e.reason = out.Reason
	}
	g.register(e, out.Addr, err)
	return e, err
}

// SpecializeGuarded is Specialize for guarded specializations (Request
// Guards): the entry dispatches on the guard conditions and is additionally
// subject to the guard-miss-storm deopt policy.
func (g *Manager) SpecializeGuarded(cfg *brew.Config, fn uint64, guards []brew.ParamGuard, args []uint64, fargs []float64) (*Entry, error) {
	e := &Entry{mgr: g, fn: fn, cfg: cfg, args: args, fargs: fargs, guards: guards, tier: cfg.Effort}
	if len(guards) == 0 {
		// A guardless guarded request would silently become a plain
		// specialization through Do; keep the historical refusal.
		e.res = &brew.Result{Addr: fn, Degraded: true}
		e.reason = brew.ReasonBadConfig
		err := fmt.Errorf("%w (%s): %w: no guards", brew.ErrDegraded, brew.ReasonBadConfig, brew.ErrBadConfig)
		g.register(e, fn, err)
		return e, err
	}
	out, err := brew.Do(g.m, &brew.Request{
		Config: cfg, Fn: fn, Guards: guards, Args: args, FArgs: fargs, Mode: brew.ModeDegrade,
	})
	e.res, e.guarded = out.Result, out.Guarded
	if out.Degraded {
		e.reason = out.Reason
	}
	g.register(e, out.Addr, err)
	return e, err
}

// AdoptPending creates a detached pending entry for a rewrite that has not
// run yet: the entry's stub is installed routing to the original function,
// so callers can take its Addr immediately and run at generic speed until
// Promote hot-patches the stub to the specialized code ("rewrite-behind" —
// the hot path never blocks on a trace). Detached entries do not occupy the
// per-function slot in the manager's table, so several specializations of
// the same function can be co-resident (the service cache keeps one entry
// per (fn, config fingerprint, argument values) key); they are exempt from
// MaxLive eviction and are released explicitly via Release.
//
// cfg, args and fargs are retained for respecialization and must not be
// mutated by the caller afterwards.
func (g *Manager) AdoptPending(cfg *brew.Config, fn uint64, args []uint64, fargs []float64, guards []brew.ParamGuard) *Entry {
	e := &Entry{
		mgr: g, fn: fn, cfg: cfg, args: args, fargs: fargs, guards: guards,
		res:     &brew.Result{Addr: fn, Degraded: true}, // placeholder until Promote
		pending: true,
		tier:    cfg.Effort,
	}
	// Stub failure (JIT space exhausted) leaves stub == 0: the entry then
	// routes to fn directly and Promote can only degrade it.
	e.stub, _ = g.installStub(fn)
	return e
}

// Promote completes a pending entry with the outcome of its rewrite
// (typically produced by a brewsvc worker via brew.Do under ModeDegrade).
// On success the stub is atomically patched to the specialized code and the
// assumption watchpoints are armed; every caller holding the entry's Addr
// switches to the specialization at the next emulated fetch. On a degraded
// outcome — or when the entry was released or lost its stub while the
// rewrite ran — the fresh code is freed and the entry stays at generic
// speed. Promote reports whether the entry now runs specialized code.
func (g *Manager) Promote(e *Entry, out *brew.Outcome, rerr error) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !e.pending {
		return false
	}
	e.pending = false

	free := func() {
		if out == nil || out.Degraded {
			return
		}
		if out.Guarded != nil {
			_ = g.m.FreeJIT(out.Guarded.Addr)
		}
		if out.Result != nil && !out.Result.Degraded {
			_ = g.m.FreeJIT(out.Result.Addr)
		}
	}
	if e.released {
		free()
		return false
	}
	if out == nil || out.Degraded || rerr != nil {
		free() // defensive: a degraded outcome carries no code
		if out != nil && out.Reason != "" {
			e.reason = out.Reason
		} else if rerr != nil {
			e.reason = brew.DegradeReason(rerr)
		}
		mDegraded.Inc()
		return false
	}
	if e.stub == 0 {
		// Nowhere to hot-install: without a patchable stub the handed-out
		// Addr is the original function forever.
		free()
		e.reason = brew.ReasonCodeBuffer
		mDegraded.Inc()
		return false
	}
	e.res, e.guarded = out.Result, out.Guarded
	e.reason = ""
	e.tier = e.cfg.Effort
	g.patchStub(e.stub, out.Addr)
	g.armWatches(e)
	g.clock++
	e.lastUse = g.clock
	mSpecializations.Inc()
	return true
}

// Repromote hot-swaps a live entry's specialized code for the outcome of
// a re-rewrite at a different effort — the tier-promotion path: a
// brewsvc background worker re-rewrites a hot tier-0 entry at
// brew.EffortFull and installs the optimized body here. cfg is the
// configuration the new code was built under; on success it replaces the
// entry's retained configuration (so later respecializations stay at the
// promoted tier), the old body and dispatcher are freed, the stub is
// atomically patched to the new code, and the assumption watchpoints are
// re-armed over the new configuration's frozen ranges.
//
// The swap is refused — and the fresh code freed — when the entry was
// released, deopted, demoted to the original function, or still pending
// while the rewrite ran, or when the outcome itself is degraded: the
// entry then keeps serving whatever it served before, so a failed
// promotion is never worse than no promotion. Like every rewrite, the
// call requires that the machine is not executing emulated code (the old
// body may not be freed out from under the emulated call stack).
func (g *Manager) Repromote(e *Entry, cfg *brew.Config, out *brew.Outcome, rerr error) bool {
	g.mu.Lock()
	defer g.mu.Unlock()

	free := func() {
		if out == nil || out.Degraded {
			return
		}
		if out.Guarded != nil {
			_ = g.m.FreeJIT(out.Guarded.Addr)
		}
		if out.Result != nil && !out.Result.Degraded {
			_ = g.m.FreeJIT(out.Result.Addr)
		}
	}
	if e.released || e.pending || e.deopted || e.res.Degraded || e.stub == 0 {
		free()
		return false
	}
	if out == nil || out.Degraded || rerr != nil {
		free()
		return false
	}
	g.disarmWatches(e)
	_ = g.freeCode(e)
	e.res, e.guarded = out.Result, out.Guarded
	if cfg != nil {
		e.cfg = cfg
	}
	e.tier = e.cfg.Effort
	e.reason = ""
	g.patchStub(e.stub, out.Addr)
	g.armWatches(e)
	g.clock++
	e.lastUse = g.clock
	return true
}

// register installs the stub, arms watchpoints, and inserts the entry,
// evicting over MaxLive.
func (g *Manager) register(e *Entry, target uint64, rerr error) {
	if rerr != nil {
		mDegraded.Inc()
	} else {
		mSpecializations.Inc()
	}
	// The stable entry: a 5-byte JMP that deoptimization can retarget
	// atomically (at emulated-instruction granularity). If even this tiny
	// allocation fails, fall back to the original entry directly — the
	// entry then cannot be specialized, only degraded.
	stub, err := g.installStub(target)
	if err != nil && !e.res.Degraded {
		_ = g.freeCode(e)
		e.res = &brew.Result{Addr: e.fn, Degraded: true}
		e.guarded = nil
		e.reason = brew.ReasonCodeBuffer
	}
	e.stub = stub // 0 on failure

	g.mu.Lock()
	if !e.res.Degraded {
		g.armWatches(e)
	}
	if old := g.entries[e.fn]; old != nil {
		g.releaseLocked(old)
	}
	g.clock++
	e.lastUse = g.clock
	g.entries[e.fn] = e
	g.evictOverLimitLocked(e)
	g.mu.Unlock()
}

// installStub emits "jmp target" into fresh JIT space.
func (g *Manager) installStub(target uint64) (uint64, error) {
	ins := isa.MakeRel(isa.JMP, target)
	size, err := isa.EncodedLen(ins)
	if err != nil {
		return 0, err
	}
	return g.m.InstallJIT(size, func(at uint64) ([]byte, error) {
		ins.Addr = at
		return isa.AppendEncode(nil, ins)
	})
}

// patchStub retargets an existing stub (requires mgr.mu or an otherwise
// quiescent entry). WriteJIT invalidates the decode cache, so the change
// is visible to the very next emulated instruction fetch.
func (g *Manager) patchStub(stub, target uint64) {
	ins := isa.MakeRel(isa.JMP, target)
	ins.Addr = stub
	code, err := isa.AppendEncode(nil, ins)
	if err != nil {
		panic(fmt.Sprintf("specmgr: stub encode: %v", err)) // fixed-form JMP cannot fail
	}
	if err := g.m.WriteJIT(stub, code); err != nil {
		panic(fmt.Sprintf("specmgr: stub patch: %v", err)) // stub memory is owned by us
	}
}

// armWatches installs write-watchpoints over the entry's frozen ranges
// (mgr.mu held).
func (g *Manager) armWatches(e *Entry) {
	for _, r := range e.cfg.FrozenRanges(e.args) {
		e.watches = append(e.watches, g.m.AddWatch(r.Start, r.End,
			func(*vm.Watch, uint64, int) {
				// Fires from the store path mid-execution, outside mgr.mu
				// (no managed code runs while the lock is held, so this
				// cannot deadlock).
				mWatchHits.Inc()
				g.mu.Lock()
				g.deoptLocked(e, DeoptAssumption)
				g.mu.Unlock()
			}))
	}
}

// disarmWatches removes the entry's watchpoints (mgr.mu held; safe during
// watch dispatch — the VM's watch list is copy-on-write).
func (g *Manager) disarmWatches(e *Entry) {
	for _, w := range e.watches {
		g.m.RemoveWatch(w)
	}
	e.watches = nil
}

// Addr returns the entry's stable address: callers may bake it into other
// specializations or tables; deoptimization retargets them all through the
// stub. It is the original function for fully degraded entries.
func (e *Entry) Addr() uint64 {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	return e.addrLocked()
}

func (e *Entry) addrLocked() uint64 {
	if e.stub != 0 {
		return e.stub
	}
	return e.fn
}

// Fn returns the original function address.
func (e *Entry) Fn() uint64 { return e.fn }

// Degraded reports whether the entry currently runs the original function
// because specialization failed (not because of a deopt, and not because it
// is still pending).
func (e *Entry) Degraded() bool {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	return e.res.Degraded && !e.pending
}

// Pending reports whether the entry awaits Promote (AdoptPending); its Addr
// routes to the original function until then.
func (e *Entry) Pending() bool {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	return e.pending
}

// Result returns the entry's current rewrite result (a degraded placeholder
// for pending, degraded, or released entries).
func (e *Entry) Result() *brew.Result {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	return e.res
}

// Deopted reports whether the entry is deoptimized and why.
func (e *Entry) Deopted() (bool, string) {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	return e.deopted, e.reason
}

// Guarded returns the guarded-dispatch result (nil for plain or degraded
// entries); its counters feed the storm policy.
func (e *Entry) Guarded() *brew.GuardedResult {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	return e.guarded
}

// prepare touches the LRU clock and performs a lazy respecialization if
// the entry is deopted and the policy allows. Returns the guarded result
// to dispatch through (nil: call the stub) and the call target.
func (e *Entry) prepare() (*brew.GuardedResult, uint64, error) {
	g := e.mgr
	g.mu.Lock()
	if e.released {
		g.mu.Unlock()
		return nil, 0, ErrReleased
	}
	g.clock++
	e.lastUse = g.clock
	if e.deopted && g.pol.Respecialize && !e.respecDone {
		e.respecDone = true
		g.respecializeLocked(e) // drops and reacquires g.mu
	}
	gr := e.guarded
	if e.deopted {
		gr = nil // dispatcher may still exist, but the stub routes to fn
	}
	target := e.addrLocked()
	g.mu.Unlock()
	return gr, target, nil
}

// Call invokes the entry with guard accounting and the adaptive deopt
// policy applied. The machine must not be executing concurrently.
func (e *Entry) Call(args ...uint64) (uint64, error) {
	e.hotCalls.Add(1)
	gr, target, err := e.prepare()
	if err != nil {
		return 0, err
	}
	if gr != nil {
		ret, err := gr.Call(e.mgr.m, args...)
		e.mgr.checkStorm(e, gr)
		return ret, err
	}
	return e.mgr.m.Call(target, args...)
}

// CallFloat is Call for float-returning functions.
func (e *Entry) CallFloat(intArgs []uint64, fArgs []float64) (float64, error) {
	e.hotCalls.Add(1)
	gr, target, err := e.prepare()
	if err != nil {
		return 0, err
	}
	if gr != nil {
		ret, err := gr.CallFloat(e.mgr.m, intArgs, fArgs)
		e.mgr.checkStorm(e, gr)
		return ret, err
	}
	return e.mgr.m.CallFloat(target, intArgs, fArgs)
}

// checkStorm applies the consecutive-miss deopt policy after a guarded
// call.
func (g *Manager) checkStorm(e *Entry, gr *brew.GuardedResult) {
	if g.pol.GuardMissLimit == 0 || gr.MissStreak() < g.pol.GuardMissLimit {
		return
	}
	g.mu.Lock()
	g.deoptLocked(e, DeoptGuardStorm)
	g.mu.Unlock()
}

// Deopt manually deoptimizes an entry: the stub is patched back to the
// original function and the assumption watchpoints are removed. The
// specialized code stays allocated until respecialization or release (it
// may still be on the emulated call stack).
func (g *Manager) Deopt(e *Entry, reason string) {
	if reason == "" {
		reason = DeoptManual
	}
	g.mu.Lock()
	g.deoptLocked(e, reason)
	g.mu.Unlock()
}

// deoptLocked is the core deoptimization. It runs under mgr.mu and may be
// invoked from a watchpoint handler in the middle of emulated execution:
// patching the stub mid-run is safe because the decode cache is
// invalidated and the stub itself is never mid-execution (it is a single
// instruction).
func (g *Manager) deoptLocked(e *Entry, reason string) {
	if e.deopted || e.released || e.res.Degraded {
		return
	}
	if e.stub != 0 {
		g.patchStub(e.stub, e.fn)
	}
	g.disarmWatches(e)
	e.deopted = true
	e.respecDone = false
	e.reason = reason
	publishDeopt(reason)
}

// respecializeLocked re-runs the rewrite against current memory. Called
// with mgr.mu held; releases it around the (slow) rewrite.
func (g *Manager) respecializeLocked(e *Entry) {
	// The machine is idle here (managed calls are serial), so the old
	// specialized code is not on the call stack and can be freed first —
	// respecialization must not leak toward code-buffer exhaustion.
	_ = g.freeCode(e)
	e.guarded = nil
	cfg, fn, guards := e.cfg, e.fn, e.guards
	args, fargs := e.args, e.fargs
	g.mu.Unlock()

	out, err := brew.Do(g.m, &brew.Request{
		Config: cfg, Fn: fn, Args: args, FArgs: fargs, Guards: guards,
	})
	var (
		target uint64
		res    *brew.Result
		gr     *brew.GuardedResult
	)
	if err == nil {
		res, gr, target = out.Result, out.Guarded, out.Addr
	}

	g.mu.Lock()
	if e.released {
		// Evicted while rewriting: drop the fresh code again.
		if err == nil {
			if gr != nil {
				_ = g.m.FreeJIT(gr.Addr)
			}
			_ = g.m.FreeJIT(res.Addr)
		}
		return
	}
	if err != nil {
		// Stay deoptimized at generic speed; the stub already routes to
		// the original function. Next deopt (i.e. never, until a manual
		// one) may retry.
		mRespecFailures.Inc()
		e.res = &brew.Result{Addr: e.fn, Degraded: true}
		e.reason = brew.DegradeReason(err)
		return
	}
	e.res, e.guarded = res, gr
	e.deopted = false
	e.reason = ""
	if e.stub != 0 {
		g.patchStub(e.stub, target)
	}
	g.armWatches(e)
	mRespecializations.Inc()
}

// Release removes an entry and frees its stub, specialized body and
// dispatcher. The entry must not be called afterwards and its Addr must no
// longer be used.
func (g *Manager) Release(e *Entry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.entries[e.fn] == e {
		delete(g.entries, e.fn)
	}
	g.releaseLocked(e)
}

func (g *Manager) releaseLocked(e *Entry) {
	if e.released {
		return
	}
	e.released = true
	g.disarmWatches(e)
	_ = g.freeCode(e)
	if e.stub != 0 {
		_ = g.m.FreeJIT(e.stub)
		e.stub = 0
	}
}

// freeCode frees the entry's specialized body and dispatcher (not the
// stub) and clears the pointers so a double free is impossible.
func (g *Manager) freeCode(e *Entry) error {
	var err error
	if e.guarded != nil {
		err = errors.Join(err, g.m.FreeJIT(e.guarded.Addr))
	}
	if e.res != nil && !e.res.Degraded {
		err = errors.Join(err, g.m.FreeJIT(e.res.Addr))
	}
	e.guarded = nil
	e.res = &brew.Result{Addr: e.fn, Degraded: true}
	return err
}

// evictOverLimitLocked evicts least-recently-used entries (never keep,
// the just-registered entry) until the policy limit holds.
func (g *Manager) evictOverLimitLocked(keep *Entry) {
	for g.pol.MaxLive > 0 && len(g.entries) > g.pol.MaxLive {
		var victim *Entry
		for _, e := range g.entries {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(g.entries, victim.fn)
		g.releaseLocked(victim)
		mEvictions.Inc()
	}
}
