// Package specmgr manages the lifetime of runtime specializations: it is
// the self-healing layer above the BREW rewriter. Each managed function is
// an Entry fronted by a small patchable stub (the stable address callers
// bake into tables), behind which lives a multi-version variant table: up
// to Policy.MaxVariants specialized bodies keyed on observed hot argument
// values, dispatched through an entry-owned inline-cache chain — one
// compare-and-branch block per guarded variant, falling through to the
// unconditional variant or the generic original on miss, so an
// unspecialized value class is never wrong, only generic-speed.
//
// Every variant is registered together with the assumptions it was built
// under — the frozen memory regions (SetMemRange plus ParamPtrToKnown
// pointees) and guarded parameter values — and the manager arms VM
// write-watchpoints over the frozen ranges. Lifecycle is per variant: a
// store into a frozen region, or a guard-miss storm, demotes only the
// offending variant by patching its chain block away before the next call
// returns; cold variants are evicted individually (LRU within the table).
// Only when the last live variant demotes does the entry as a whole
// deoptimize — the stub is redirected to the original function, and on
// the next managed call the entry may lazily re-specialize against the
// new memory contents.
//
// Together with brew.Do's degrade mode this yields the robustness
// invariant the chaos tests (chaos_test.go) enforce: the system is never
// wrong and never crashes; at worst it runs the original code at generic
// speed.
package specmgr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/brew"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Deoptimization reasons.
const (
	// DeoptAssumption: a store hit a frozen memory region.
	DeoptAssumption = "assumption-violated"
	// DeoptGuardStorm: Policy.GuardMissLimit consecutive guard misses.
	DeoptGuardStorm = "guard-miss-storm"
	// DeoptManual: explicit Manager.Deopt call.
	DeoptManual = "manual"
	// DeoptEvicted: the variant was removed by its owner (cache eviction),
	// not by an invalidated assumption.
	DeoptEvicted = "variant-evicted"
)

// ErrReleased reports a managed call through a released entry.
var ErrReleased = errors.New("specmgr: entry released")

// Policy configures a Manager.
type Policy struct {
	// MaxLive bounds live entries; exceeding it evicts the least recently
	// used entry (releasing its code-buffer space). 0 means unlimited.
	MaxLive int
	// MaxVariants bounds the live variants in one entry's table; installing
	// past it evicts the least recently dispatched variant (its body is
	// reclaimed, the rest of the table keeps serving). 0 means unlimited.
	MaxVariants int
	// GuardMissLimit demotes a guarded variant after this many consecutive
	// guard misses observed by Entry.Call/CallFloat (the specialized
	// variant is evidently no longer the hot case). 0 disables.
	GuardMissLimit uint64
	// Respecialize re-runs the rewrite lazily on the first managed call
	// after a deoptimization, against the current memory contents. One
	// attempt per deoptimization: a failed attempt leaves the entry
	// degraded until the next deopt.
	Respecialize bool
}

// Manager tracks specializations for one machine. All methods are safe for
// concurrent use with each other while the machine is not executing;
// managed calls themselves must come from one goroutine at a time (the
// machine is single-threaded).
type Manager struct {
	m   *vm.Machine
	pol Policy

	mu      sync.Mutex
	entries map[uint64]*Entry // original entry address -> live entry
	clock   uint64
}

// Entry is one managed function. Its stable address (Addr) is a small
// patchable stub routing into the variant table's dispatch chain, so
// demotion and deoptimization retarget every caller at once.
type Entry struct {
	mgr *Manager
	fn  uint64

	// Hotness counters (tiered rewriting): hotCalls is the cheap
	// stub-side counter bumped on every managed call; hotSamples counts
	// sampling-profiler hits attributed to this entry's code (each sample
	// represents one profiler interval of cycles). Atomic so the call
	// path and the profiler feed never take mgr.mu. Per-variant hotness
	// lives on the Variants themselves.
	hotCalls   atomic.Uint64
	hotSamples atomic.Uint64

	// Everything below is guarded by mgr.mu.
	stub     uint64         // patchable JMP, 0 if stub allocation failed
	variants []*Variant     // live variants, chain dispatch order
	retired  []*Variant     // demoted/evicted, code pending idle-point reclaim
	chain    *dispatchChain // inline-cache dispatcher, nil when no guarded variant
	primary  *Variant       // the variant Result/Tier/Guarded report (first install)

	// The primary request, retained for respecialization; callers must not
	// mutate cfg/args/fargs after handing them over.
	cfg    *brew.Config
	args   []uint64
	fargs  []float64
	guards []brew.ParamGuard

	pending    bool // adopted, awaiting Promote (stub routes to fn meanwhile)
	degraded   bool // specialization failed; running the original
	deopted    bool
	reason     string // last deopt (or degradation) reason
	respecDone bool   // one respecialization attempt per deopt
	released   bool
	lastUse    uint64
}

// NoteCall bumps the entry's call-hotness counter. Entry.Call/CallFloat
// do this automatically; hosts dispatching through the raw stub address
// call it from their own dispatch path (the "cheap stub-side counter").
func (e *Entry) NoteCall() { e.hotCalls.Add(1) }

// NoteSample attributes one sampling-profiler hit to the entry (the
// profiler fires every Interval cycles, so samples are a cycle-weighted
// hotness signal covering calls that bypass Entry.Call).
func (e *Entry) NoteSample() { e.hotSamples.Add(1) }

// Hotness returns the entry's accumulated hotness counters.
func (e *Entry) Hotness() (calls, samples uint64) {
	return e.hotCalls.Load(), e.hotSamples.Load()
}

// Tier returns the effort of the code the entry actually serves: the
// primary variant's rewrite effort, or EffortFull for pending, degraded,
// deopted, or released entries — those run the original function, which
// by definition is not a reduced-fidelity body.
func (e *Entry) Tier() brew.Effort {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	if p := e.primary; p != nil && p.live && !e.pending && !e.deopted && !e.degraded && !e.released {
		return p.tier
	}
	return brew.EffortFull
}

// New returns a Manager for machine m.
func New(m *vm.Machine, pol Policy) *Manager {
	return &Manager{m: m, pol: pol, entries: make(map[uint64]*Entry)}
}

// Len returns the number of live entries.
func (g *Manager) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.entries)
}

// Lookup returns the live entry for the function at fn, or nil.
func (g *Manager) Lookup(fn uint64) *Entry {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.entries[fn]
}

// Specialize rewrites fn under cfg and registers the result. It never
// fails into an unusable state: on any rewrite failure the returned entry
// transparently runs the original function and the error reports the
// cause. cfg, args and fargs are retained for respecialization and must
// not be mutated by the caller afterwards.
func (g *Manager) Specialize(cfg *brew.Config, fn uint64, args []uint64, fargs []float64) (*Entry, error) {
	out, err := brew.Do(g.m, &brew.Request{
		Config: cfg, Fn: fn, Args: args, FArgs: fargs, Mode: brew.ModeDegrade,
	})
	e := &Entry{mgr: g, fn: fn, cfg: cfg, args: args, fargs: fargs}
	g.registerNew(e, out, err)
	return e, err
}

// SpecializeGuarded is Specialize for guarded specializations (Request
// Guards): the entry's variant dispatches on the guard conditions and is
// additionally subject to the guard-miss-storm demotion policy.
func (g *Manager) SpecializeGuarded(cfg *brew.Config, fn uint64, guards []brew.ParamGuard, args []uint64, fargs []float64) (*Entry, error) {
	e := &Entry{mgr: g, fn: fn, cfg: cfg, args: args, fargs: fargs, guards: guards}
	if len(guards) == 0 {
		// A guardless guarded request would silently become a plain
		// specialization through Do; keep the historical refusal.
		e.reason = brew.ReasonBadConfig
		err := fmt.Errorf("%w (%s): %w: no guards", brew.ErrDegraded, brew.ReasonBadConfig, brew.ErrBadConfig)
		g.registerNew(e, nil, err)
		return e, err
	}
	out, err := brew.Do(g.m, &brew.Request{
		Config: cfg, Fn: fn, Guards: guards, Args: args, FArgs: fargs, Mode: brew.ModeDegrade,
	})
	g.registerNew(e, out, err)
	return e, err
}

// AdoptPending creates a detached pending entry for a rewrite that has not
// run yet: the entry's stub is installed routing to the original function,
// so callers can take its Addr immediately and run at generic speed until
// Promote hot-patches the stub to the specialized code ("rewrite-behind" —
// the hot path never blocks on a trace). Detached entries do not occupy the
// per-function slot in the manager's table, so several specializations of
// the same function can be co-resident (the service cache keeps one entry
// per (fn, config fingerprint, guard-set) key); they are exempt from
// MaxLive eviction and are released explicitly via Release.
//
// cfg, args and fargs are retained for respecialization and must not be
// mutated by the caller afterwards.
func (g *Manager) AdoptPending(cfg *brew.Config, fn uint64, args []uint64, fargs []float64, guards []brew.ParamGuard) *Entry {
	e := &Entry{
		mgr: g, fn: fn, cfg: cfg, args: args, fargs: fargs, guards: guards,
		pending: true,
	}
	// Stub failure (JIT space exhausted) leaves stub == 0: the entry then
	// routes to fn directly and installs can only degrade it.
	e.stub, _ = g.installStub(fn)
	return e
}

// Promote completes a pending entry with the outcome of its rewrite
// (typically produced by a brewsvc worker via brew.Do under ModeDegrade),
// installing it as the entry's first — primary — variant. On success the
// stub is atomically patched to the specialized code (directly, or through
// the dispatch chain for guarded outcomes) and the assumption watchpoints
// are armed; every caller holding the entry's Addr switches to the
// specialization at the next emulated fetch. On a degraded outcome — or
// when the entry was released or lost its stub while the rewrite ran —
// the fresh code is freed and the entry stays at generic speed. Promote
// reports whether the entry now runs specialized code.
func (g *Manager) Promote(e *Entry, out *brew.Outcome, rerr error) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !e.pending {
		return false
	}
	e.pending = false

	if e.released {
		freeOutcome(g.m, out)
		return false
	}
	if out == nil || out.Degraded || rerr != nil {
		freeOutcome(g.m, out) // defensive: a degraded outcome carries no code
		e.degraded = true
		if out != nil && out.Reason != "" {
			e.reason = out.Reason
		} else if rerr != nil {
			e.reason = brew.DegradeReason(rerr)
		}
		publishDegrade(e, e.reason)
		return false
	}
	if e.stub == 0 {
		// Nowhere to hot-install: without a patchable stub the handed-out
		// Addr is the original function forever.
		freeOutcome(g.m, out)
		e.degraded = true
		e.reason = brew.ReasonCodeBuffer
		publishDegrade(e, e.reason)
		return false
	}
	v := g.installOutcomeLocked(e, e.cfg, e.guards, e.args, e.fargs, out)
	if v == nil {
		publishDegrade(e, e.reason)
		return false
	}
	e.primary = v
	g.clock++
	e.lastUse = g.clock
	mSpecializations.Inc()
	return true
}

// Repromote hot-swaps the entry's primary variant for the outcome of a
// re-rewrite at a different effort — the tier-promotion path: a brewsvc
// background worker re-rewrites a hot tier-0 variant at brew.EffortFull
// and installs the optimized body here. It is RepromoteVariant applied to
// the primary variant; cfg on success replaces the entry's retained
// configuration (so later respecializations stay at the promoted tier).
//
// The swap is refused — and the fresh code freed — when the entry was
// released, deopted, degraded, or still pending while the rewrite ran, or
// when the outcome itself is degraded: the entry then keeps serving
// whatever it served before, so a failed promotion is never worse than no
// promotion. Like every rewrite, the call requires that the machine is
// not executing emulated code (the old body may not be freed out from
// under the emulated call stack).
func (g *Manager) Repromote(e *Entry, cfg *brew.Config, out *brew.Outcome, rerr error) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e.released || e.pending || e.deopted || e.degraded || e.primary == nil || !e.primary.live {
		freeOutcome(g.m, out)
		return false
	}
	return g.repromoteVariantLocked(e, e.primary, cfg, out, rerr)
}

// registerNew installs the stub and inserts the fresh entry, evicting over
// MaxLive. The specialization/degradation counter decision happens after
// the stub outcome: a successful rewrite whose stub allocation fails
// cannot be served and is counted as degraded, not as a live
// specialization.
func (g *Manager) registerNew(e *Entry, out *brew.Outcome, rerr error) {
	// The stable entry: a 5-byte JMP that demotion can retarget atomically
	// (at emulated-instruction granularity). If even this tiny allocation
	// fails, fall back to the original entry directly — the entry then
	// cannot be specialized, only degraded.
	stub, serr := g.installStub(e.fn)
	e.stub = stub // 0 on failure

	g.mu.Lock()
	switch {
	case out == nil || out.Degraded || rerr != nil:
		freeOutcome(g.m, out) // defensive: a degraded outcome carries no code
		e.degraded = true
		if e.reason == "" {
			if out != nil && out.Reason != "" {
				e.reason = out.Reason
			} else if rerr != nil {
				e.reason = brew.DegradeReason(rerr)
			}
		}
		publishDegrade(e, e.reason)
	case serr != nil:
		freeOutcome(g.m, out)
		e.degraded = true
		e.reason = brew.ReasonCodeBuffer
		publishDegrade(e, e.reason)
	default:
		if v := g.installOutcomeLocked(e, e.cfg, e.guards, e.args, e.fargs, out); v != nil {
			e.primary = v
			mSpecializations.Inc()
		} else {
			// installOutcomeLocked degraded the entry (chain allocation
			// failed); count it with the other degradations.
			publishDegrade(e, e.reason)
		}
	}
	if old := g.entries[e.fn]; old != nil {
		g.releaseLocked(old)
	}
	g.clock++
	e.lastUse = g.clock
	g.entries[e.fn] = e
	g.evictOverLimitLocked(e)
	g.mu.Unlock()
}

// installStub emits "jmp target" into fresh JIT space.
func (g *Manager) installStub(target uint64) (uint64, error) {
	ins := isa.MakeRel(isa.JMP, target)
	size, err := isa.EncodedLen(ins)
	if err != nil {
		return 0, err
	}
	return g.m.InstallJIT(size, func(at uint64) ([]byte, error) {
		ins.Addr = at
		return isa.AppendEncode(nil, ins)
	})
}

// patchStub retargets an existing stub (requires mgr.mu or an otherwise
// quiescent entry). WriteJIT invalidates the decode cache, so the change
// is visible to the very next emulated instruction fetch.
func (g *Manager) patchStub(stub, target uint64) {
	ins := isa.MakeRel(isa.JMP, target)
	ins.Addr = stub
	code, err := isa.AppendEncode(nil, ins)
	if err != nil {
		panic(fmt.Sprintf("specmgr: stub encode: %v", err)) // fixed-form JMP cannot fail
	}
	if err := g.m.WriteJIT(stub, code); err != nil {
		panic(fmt.Sprintf("specmgr: stub patch: %v", err)) // stub memory is owned by us
	}
}

// patchJmp retargets one JMP inside the dispatch chain — same
// single-instruction patch as the stub, so it is safe mid-execution.
func (g *Manager) patchJmp(at, target uint64) { g.patchStub(at, target) }

// Addr returns the entry's stable address: callers may bake it into other
// specializations or tables; demotion retargets them all through the
// stub. It is the original function for fully degraded entries.
func (e *Entry) Addr() uint64 {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	return e.addrLocked()
}

func (e *Entry) addrLocked() uint64 {
	if e.stub != 0 {
		return e.stub
	}
	return e.fn
}

// Fn returns the original function address.
func (e *Entry) Fn() uint64 { return e.fn }

// Degraded reports whether the entry currently runs the original function
// because specialization failed (not because of a deopt, and not because it
// is still pending).
func (e *Entry) Degraded() bool {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	return e.degraded && !e.pending
}

// Pending reports whether the entry awaits Promote (AdoptPending); its Addr
// routes to the original function until then.
func (e *Entry) Pending() bool {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	return e.pending
}

// Result returns the primary variant's rewrite result (a degraded
// placeholder for pending, degraded, deopted, or released entries).
func (e *Entry) Result() *brew.Result {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	if p := e.primary; p != nil && p.live && p.res != nil && !e.pending {
		return p.res
	}
	return &brew.Result{Addr: e.fn, Degraded: true}
}

// Deopted reports whether the entry is deoptimized and why (the reason is
// also set for degraded entries).
func (e *Entry) Deopted() (bool, string) {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	return e.deopted, e.reason
}

// Guarded returns the primary variant's guard accounting (nil for plain,
// pending, or degraded entries); its counters feed the storm policy. Only
// the counters and Matches are meaningful: dispatch runs through the
// entry's inline-cache chain, not the dispatcher brew built.
func (e *Entry) Guarded() *brew.GuardedResult {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	if p := e.primary; p != nil && p.live {
		return p.gr
	}
	return nil
}

// Variants returns a snapshot of the live variant table in dispatch
// order.
func (e *Entry) Variants() []*Variant {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	return append([]*Variant(nil), e.variants...)
}

// DispatchRange returns the JIT address range of the entry's inline-cache
// dispatch chain, or (0, 0) when no chain exists (at most one
// unconditional variant). Profiler samples landing in the chain belong to
// the entry's dispatch work.
func (e *Entry) DispatchRange() (lo, hi uint64) {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	if e.chain == nil {
		return 0, 0
	}
	return e.chain.addr, e.chain.addr + uint64(e.chain.size)
}

// VariantFor returns the variant the dispatch chain would route args to
// (the unconditional variant on a full miss), or nil when the entry runs
// the original function.
func (e *Entry) VariantFor(args []uint64) *Variant {
	e.mgr.mu.Lock()
	defer e.mgr.mu.Unlock()
	if e.deopted || e.pending || e.released {
		return nil
	}
	for _, v := range e.variants {
		if len(v.key) > 0 && v.gr.Matches(args) {
			return v
		}
	}
	return e.uncondLocked()
}

func (e *Entry) uncondLocked() *Variant {
	for _, v := range e.variants {
		if len(v.key) == 0 {
			return v
		}
	}
	return nil
}

func (e *Entry) hasLiveLocked() bool { return len(e.variants) > 0 }

// prepare is the managed-call entry point: it touches the LRU clock,
// reclaims retired code (the machine is idle here — managed calls are
// serial), performs a lazy respecialization if the entry is deopted and
// the policy allows, and mirrors the chain's dispatch decision into the
// per-variant hit/miss accounting. Returns the call target.
func (e *Entry) prepare(args []uint64) (uint64, error) {
	g := e.mgr
	g.mu.Lock()
	if e.released {
		g.mu.Unlock()
		return 0, ErrReleased
	}
	g.clock++
	e.lastUse = g.clock
	g.compactLocked(e)
	if e.deopted && g.pol.Respecialize && !e.respecDone {
		e.respecDone = true
		g.respecializeLocked(e) // drops and reacquires g.mu
	}
	e.noteDispatchLocked(g, args)
	target := e.addrLocked()
	g.mu.Unlock()
	return target, nil
}

// noteDispatchLocked replays the chain's dispatch decision over the live
// variants in chain order: guard accounting (hit/miss/streak) for every
// guarded variant up to and including the one that matches, and a
// call-hotness bump for the variant that will run.
func (e *Entry) noteDispatchLocked(g *Manager, args []uint64) {
	if e.deopted || e.pending || e.released {
		return
	}
	var uncond *Variant
	for _, v := range e.variants {
		if len(v.key) == 0 {
			uncond = v
			continue
		}
		hit := v.gr.Matches(args)
		v.gr.Note(hit)
		if hit {
			v.hotCalls.Add(1)
			g.clock++
			v.lastUse = g.clock
			return
		}
	}
	if uncond != nil {
		uncond.hotCalls.Add(1)
		g.clock++
		uncond.lastUse = g.clock
	}
}

// Call invokes the entry with guard accounting and the adaptive demotion
// policy applied. The machine must not be executing concurrently.
func (e *Entry) Call(args ...uint64) (uint64, error) {
	e.hotCalls.Add(1)
	target, err := e.prepare(args)
	if err != nil {
		return 0, err
	}
	ret, cerr := e.mgr.m.Call(target, args...)
	e.mgr.checkStorm(e)
	return ret, cerr
}

// CallFloat is Call for float-returning functions. Guard dispatch is on
// the integer arguments, as in the chain itself.
func (e *Entry) CallFloat(intArgs []uint64, fArgs []float64) (float64, error) {
	e.hotCalls.Add(1)
	target, err := e.prepare(intArgs)
	if err != nil {
		return 0, err
	}
	ret, cerr := e.mgr.m.CallFloat(target, intArgs, fArgs)
	e.mgr.checkStorm(e)
	return ret, cerr
}

// checkStorm applies the consecutive-miss demotion policy after a managed
// call: any guarded variant whose miss streak reached the limit is
// evidently no longer a hot case and is demoted (only that variant — the
// rest of the table keeps serving).
func (g *Manager) checkStorm(e *Entry) {
	if g.pol.GuardMissLimit == 0 {
		return
	}
	g.mu.Lock()
	for _, v := range append([]*Variant(nil), e.variants...) {
		if v.live && len(v.key) > 0 && v.gr.MissStreak() >= g.pol.GuardMissLimit {
			emitVariant(obs.KindGuardStorm, e, v, DeoptGuardStorm)
			g.demoteVariantLocked(e, v, DeoptGuardStorm)
		}
	}
	g.mu.Unlock()
}

// Deopt manually deoptimizes an entry: every live variant is demoted, the
// stub is patched back to the original function and the assumption
// watchpoints are removed. The specialized code stays allocated until the
// next idle-point compaction, respecialization or release (it may still
// be on the emulated call stack).
func (g *Manager) Deopt(e *Entry, reason string) {
	if reason == "" {
		reason = DeoptManual
	}
	g.mu.Lock()
	for _, v := range append([]*Variant(nil), e.variants...) {
		g.demoteVariantLocked(e, v, reason)
	}
	g.mu.Unlock()
}

// respecializeLocked re-runs the primary rewrite against current memory.
// Called with mgr.mu held; releases it around the (slow) rewrite.
func (g *Manager) respecializeLocked(e *Entry) {
	// The machine is idle here (managed calls are serial), so retired and
	// demoted code is not on the call stack and is reclaimed before the
	// rewrite — respecialization must not leak toward code-buffer
	// exhaustion.
	for _, v := range append([]*Variant(nil), e.variants...) {
		g.retireVariantLocked(v)
	}
	g.compactLocked(e)
	cfg, fn, guards := e.cfg, e.fn, e.guards
	args, fargs := e.args, e.fargs
	g.mu.Unlock()

	out, err := brew.Do(g.m, &brew.Request{
		Config: cfg, Fn: fn, Args: args, FArgs: fargs, Guards: guards,
	})

	g.mu.Lock()
	if e.released || !e.deopted {
		// Evicted — or revived by a concurrent install — while rewriting:
		// drop the fresh code again.
		if err == nil {
			freeOutcome(g.m, out)
		}
		return
	}
	if err != nil {
		// Stay deoptimized at generic speed; the stub already routes to
		// the original function. Next deopt (i.e. never, until a manual
		// one) may retry.
		mRespecFailures.Inc()
		e.degraded = true
		e.reason = brew.DegradeReason(err)
		return
	}
	v := g.installOutcomeLocked(e, cfg, guards, args, fargs, out)
	if v == nil {
		mRespecFailures.Inc()
		return
	}
	e.primary = v
	mRespecializations.Inc()
}

// Release removes an entry and frees its stub, variant bodies and
// dispatch chain. The entry must not be called afterwards and its Addr
// must no longer be used.
func (g *Manager) Release(e *Entry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.entries[e.fn] == e {
		delete(g.entries, e.fn)
	}
	g.releaseLocked(e)
}

func (g *Manager) releaseLocked(e *Entry) {
	if e.released {
		return
	}
	e.released = true
	for _, v := range e.variants {
		g.disarmVariantWatches(v)
		v.live = false
		if v.res != nil && !v.res.Degraded {
			_ = g.m.FreeJIT(v.res.Addr)
		}
		v.res = nil
		v.gr = nil
	}
	e.variants = nil
	for _, v := range e.retired {
		if v.res != nil && !v.res.Degraded {
			_ = g.m.FreeJIT(v.res.Addr)
		}
		v.res = nil
		v.gr = nil
	}
	e.retired = nil
	if e.chain != nil {
		_ = g.m.FreeJIT(e.chain.addr)
		e.chain = nil
	}
	if e.stub != 0 {
		_ = g.m.FreeJIT(e.stub)
		e.stub = 0
	}
}

// evictOverLimitLocked evicts least-recently-used entries (never keep,
// the just-registered entry) until the policy limit holds.
func (g *Manager) evictOverLimitLocked(keep *Entry) {
	for g.pol.MaxLive > 0 && len(g.entries) > g.pol.MaxLive {
		var victim *Entry
		for _, e := range g.entries {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(g.entries, victim.fn)
		g.releaseLocked(victim)
		mEvictions.Inc()
		emitVariant(obs.KindVariantEvict, victim, nil, "entry-lru")
	}
}
