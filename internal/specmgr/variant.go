package specmgr

import (
	"sort"
	"sync/atomic"

	"repro/internal/brew"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Variant is one live specialized body in an Entry's variant table, keyed
// on the guard conditions it was built for (an empty key marks the
// unconditional variant — at most one per entry). Variants have their own
// lifecycle: a guard-miss storm or assumption violation demotes only the
// offending variant, and cold variants are evicted individually (LRU
// within the table, bounded by Policy.MaxVariants).
type Variant struct {
	e *Entry

	// Hotness counters, atomic for the same reason as the Entry ones: the
	// call path and the profiler feed never take mgr.mu.
	hotCalls   atomic.Uint64
	hotSamples atomic.Uint64

	// Everything below is guarded by mgr.mu.
	key     []brew.ParamGuard // sorted guards; empty = unconditional
	res     *brew.Result
	gr      *brew.GuardedResult // counters/Matches only; its dispatcher code is freed at install
	cfg     *brew.Config
	args    []uint64
	fargs   []float64
	watches []*vm.Watch
	tier    brew.Effort
	live    bool
	lastUse uint64

	// Inline-cache chain anchors: jmpAddr is this variant's "jmp body"
	// instruction inside the chain (0 when no chain covers it), nextAddr
	// the following block's start — the demotion patch target.
	jmpAddr  uint64
	nextAddr uint64
}

// dispatchChain is the entry-owned inline-cache dispatcher: one compare
// block per guarded variant, falling through to the unconditional variant
// or the original function.
type dispatchChain struct {
	addr     uint64
	size     int
	finalJmp uint64 // the fall-through JMP (patched when the unconditional variant demotes)
}

// NoteCall bumps the variant's call-hotness counter (the service bumps it
// when its dispatch accounting attributes a managed call to this variant).
func (v *Variant) NoteCall() { v.hotCalls.Add(1) }

// NoteSample attributes one sampling-profiler hit to the variant's body.
func (v *Variant) NoteSample() { v.hotSamples.Add(1) }

// Hotness returns the variant's accumulated hotness counters.
func (v *Variant) Hotness() (calls, samples uint64) {
	return v.hotCalls.Load(), v.hotSamples.Load()
}

// Entry returns the owning entry.
func (v *Variant) Entry() *Entry { return v.e }

// Key returns a copy of the variant's guard key (empty for the
// unconditional variant).
func (v *Variant) Key() []brew.ParamGuard {
	v.e.mgr.mu.Lock()
	defer v.e.mgr.mu.Unlock()
	return append([]brew.ParamGuard(nil), v.key...)
}

// Live reports whether the variant is still dispatched to. Demoted or
// evicted variants stay false forever (a reinstall under the same key
// creates a fresh Variant).
func (v *Variant) Live() bool {
	v.e.mgr.mu.Lock()
	defer v.e.mgr.mu.Unlock()
	return v.live
}

// Result returns the variant's rewrite result (nil once the variant was
// demoted and its body reclaimed).
func (v *Variant) Result() *brew.Result {
	v.e.mgr.mu.Lock()
	defer v.e.mgr.mu.Unlock()
	return v.res
}

// Tier returns the effort the variant's body was rewritten at.
func (v *Variant) Tier() brew.Effort {
	v.e.mgr.mu.Lock()
	defer v.e.mgr.mu.Unlock()
	return v.tier
}

// Guarded returns the variant's guard accounting (nil for the
// unconditional variant). Only the counters and Matches are meaningful:
// the dispatcher code brew built was replaced by the entry's chain and
// freed at install time.
func (v *Variant) Guarded() *brew.GuardedResult {
	v.e.mgr.mu.Lock()
	defer v.e.mgr.mu.Unlock()
	return v.gr
}

// normalizeGuards returns a sorted copy so variant keys compare
// order-independently.
func normalizeGuards(gs []brew.ParamGuard) []brew.ParamGuard {
	if len(gs) == 0 {
		return nil
	}
	out := append([]brew.ParamGuard(nil), gs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Param != out[j].Param {
			return out[i].Param < out[j].Param
		}
		return out[i].Value < out[j].Value
	})
	return out
}

func guardsEqual(a, b []brew.ParamGuard) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InstallVariant installs the outcome of a rewrite as one variant of e's
// table, keyed on guards (nil guards install the unconditional variant).
// It is the multi-version generalization of Promote: it does not require
// the entry to be pending (it clears a pending state, and revives a
// degraded or deopted entry), a same-key install replaces that variant's
// body, and installing over Policy.MaxVariants evicts the coldest
// variant. On a degraded outcome — or when the entry was released or has
// no stub — the fresh code is freed and the table is untouched. Like
// every install it requires an idle machine (the rewrite contract).
func (g *Manager) InstallVariant(e *Entry, cfg *brew.Config, guards []brew.ParamGuard, args []uint64, fargs []float64, out *brew.Outcome, rerr error) (*Variant, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e.released {
		freeOutcome(g.m, out)
		return nil, false
	}
	wasPending := e.pending
	e.pending = false
	if out == nil || out.Degraded || rerr != nil {
		freeOutcome(g.m, out)
		reason := ""
		if out != nil && out.Reason != "" {
			reason = out.Reason
		} else if rerr != nil {
			reason = brew.DegradeReason(rerr)
		}
		if !e.hasLiveLocked() {
			e.degraded = true
			if reason != "" {
				e.reason = reason
			}
		}
		publishDegrade(e, reason)
		return nil, false
	}
	if e.stub == 0 {
		freeOutcome(g.m, out)
		if !e.hasLiveLocked() {
			e.degraded = true
			e.reason = brew.ReasonCodeBuffer
		}
		publishDegrade(e, brew.ReasonCodeBuffer)
		return nil, false
	}
	v := g.installOutcomeLocked(e, cfg, guards, args, fargs, out)
	if v == nil {
		publishDegrade(e, e.reason)
		return nil, false
	}
	if wasPending || e.primary == nil || !e.primary.live {
		e.primary = v
	}
	g.clock++
	e.lastUse = g.clock
	mSpecializations.Inc()
	return v, true
}

// RepromoteVariant hot-swaps one live variant's body for the outcome of a
// re-rewrite at a different effort — tier promotion at variant
// granularity. The swap is refused (and the fresh code freed) when the
// entry was released or pending, the variant was demoted or evicted while
// the rewrite ran, or the outcome is degraded: the variant then keeps
// serving what it served before. Requires an idle machine.
func (g *Manager) RepromoteVariant(e *Entry, v *Variant, cfg *brew.Config, out *brew.Outcome, rerr error) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.repromoteVariantLocked(e, v, cfg, out, rerr)
}

func (g *Manager) repromoteVariantLocked(e *Entry, v *Variant, cfg *brew.Config, out *brew.Outcome, rerr error) bool {
	if e.released || e.pending || v == nil || v.e != e || !v.live || e.stub == 0 ||
		out == nil || out.Degraded || rerr != nil {
		freeOutcome(g.m, out)
		return false
	}
	g.disarmVariantWatches(v)
	if v.res != nil && !v.res.Degraded {
		_ = g.m.FreeJIT(v.res.Addr) // idle: the old body is not on the call stack
	}
	v.res = out.Result
	v.gr = nil
	if gr := out.Guarded; gr != nil {
		_ = g.m.FreeJIT(gr.Addr) // chain dispatch replaces the built-in dispatcher
		v.gr = gr
	}
	if cfg != nil {
		v.cfg = cfg
		if v == e.primary {
			e.cfg = cfg
		}
	}
	v.tier = v.cfg.Effort
	e.reason = ""
	// Retarget the variant's dispatch point at the new body.
	switch {
	case len(v.key) > 0 && v.jmpAddr != 0:
		g.patchJmp(v.jmpAddr, v.res.Addr)
	case len(v.key) == 0 && e.chain != nil:
		g.patchJmp(e.chain.finalJmp, v.res.Addr)
	default:
		g.patchStub(e.stub, v.res.Addr)
	}
	g.armVariantWatches(v)
	g.clock++
	e.lastUse = g.clock
	v.lastUse = g.clock
	g.compactLocked(e)
	return true
}

// RemoveVariant demotes and reclaims one variant (service cache eviction).
// Requires an idle machine: unlike a mid-execution demotion, the body is
// freed immediately.
func (g *Manager) RemoveVariant(e *Entry, v *Variant) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e.released || v == nil || !v.live {
		return
	}
	g.demoteVariantLocked(e, v, DeoptEvicted)
	mVariantEvictions.Inc()
	emitVariant(obs.KindVariantEvict, e, v, DeoptEvicted)
	g.compactLocked(e)
}

// installOutcomeLocked is the install core shared by Specialize, Promote,
// InstallVariant and respecialization: it adopts the outcome's body as a
// (new or same-key replacement) variant, applies the per-table LRU bound,
// rebuilds the dispatch chain and arms the assumption watchpoints.
// Preconditions: mgr.mu held, machine idle, non-degraded outcome, entry
// not released, stub installed. Returns nil — with the entry degraded —
// only when the dispatch chain cannot be allocated.
func (g *Manager) installOutcomeLocked(e *Entry, cfg *brew.Config, guards []brew.ParamGuard, args []uint64, fargs []float64, out *brew.Outcome) *Variant {
	key := normalizeGuards(guards)
	gr := out.Guarded
	if gr != nil {
		// Dispatch runs through the entry's own inline-cache chain; only
		// the GuardedResult's counters are kept (they feed the per-variant
		// miss accounting and the storm policy).
		_ = g.m.FreeJIT(gr.Addr)
	}
	var v *Variant
	for _, lv := range e.variants {
		if guardsEqual(lv.key, key) {
			v = lv
			break
		}
	}
	if v != nil {
		// Same-key replacement: the old body is retired in place.
		g.disarmVariantWatches(v)
		if v.res != nil && !v.res.Degraded {
			_ = g.m.FreeJIT(v.res.Addr)
		}
	} else {
		v = &Variant{e: e, key: key}
		e.variants = append(e.variants, v)
	}
	v.res, v.gr = out.Result, gr
	v.cfg, v.args, v.fargs = cfg, args, fargs
	v.tier = cfg.Effort
	v.live = true
	g.clock++
	v.lastUse = g.clock

	g.evictVariantsOverLimitLocked(e, v)

	e.pending = false
	e.degraded = false
	e.deopted = false
	e.reason = ""

	if err := g.rebuildDispatchLocked(e); err != nil {
		// No chain, so guarded variants are unreachable: retire them (the
		// machine is idle here, the compact below reclaims the bodies).
		for _, lv := range append([]*Variant(nil), e.variants...) {
			if len(lv.key) > 0 {
				g.retireVariantLocked(lv)
			}
		}
		_ = g.rebuildDispatchLocked(e) // chainless: pure stub patch, cannot fail
		g.compactLocked(e)
		if v.live { // v was the unconditional variant: still served
			g.armVariantWatches(v)
			return v
		}
		if !e.hasLiveLocked() {
			e.degraded = true
			e.reason = brew.ReasonCodeBuffer
		}
		return nil
	}
	g.armVariantWatches(v)
	g.compactLocked(e)
	emitVariant(obs.KindVariantInstall, e, v, "")
	return v
}

// rebuildDispatchLocked (re)builds the entry's inline-cache dispatch chain
// over its live variants and patches the stub at it. With no guarded
// variants the stub routes straight to the unconditional body (or the
// original function) and no chain exists. Requires an idle machine: the
// old chain is freed immediately.
func (g *Manager) rebuildDispatchLocked(e *Entry) error {
	if e.chain != nil {
		_ = g.m.FreeJIT(e.chain.addr)
		e.chain = nil
	}
	var guarded []*Variant
	var uncond *Variant
	for _, v := range e.variants {
		v.jmpAddr, v.nextAddr = 0, 0
		if len(v.key) == 0 {
			uncond = v
		} else {
			guarded = append(guarded, v)
		}
	}
	if e.stub == 0 {
		return nil
	}
	if len(guarded) == 0 {
		if uncond != nil {
			g.patchStub(e.stub, uncond.res.Addr)
		} else {
			g.patchStub(e.stub, e.fn)
		}
		return nil
	}

	fallthru := e.fn
	if uncond != nil {
		fallthru = uncond.res.Addr
	}

	// Layout pass: per-variant compare blocks, then the fall-through JMP.
	// Branch encodings are fixed-size rel32, so the sizes computed here
	// hold wherever the chain lands.
	type block struct {
		v      *Variant
		off    int // block start
		jmpOff int // the "jmp body" inside the block
	}
	blocks := make([]block, 0, len(guarded))
	off := 0
	measure := func(ins isa.Instr) (int, error) { return isa.EncodedLen(ins) }
	for _, v := range guarded {
		b := block{v: v, off: off}
		for _, gd := range v.key {
			n, err := measure(isa.MakeRI(isa.CMPI, isa.IntArgRegs[gd.Param-1], int64(gd.Value)))
			if err != nil {
				return err
			}
			off += n
			if n, err = measure(isa.MakeJCC(isa.CondNE, 0)); err != nil {
				return err
			}
			off += n
		}
		b.jmpOff = off
		n, err := measure(isa.MakeRel(isa.JMP, 0))
		if err != nil {
			return err
		}
		off += n
		blocks = append(blocks, b)
	}
	finalOff := off
	n, err := measure(isa.MakeRel(isa.JMP, 0))
	if err != nil {
		return err
	}
	size := off + n

	addr, err := g.m.InstallJIT(size, func(at uint64) ([]byte, error) {
		var code []byte
		emit := func(ins isa.Instr) error {
			ins.Addr = at + uint64(len(code))
			var eerr error
			code, eerr = isa.AppendEncode(code, ins)
			return eerr
		}
		for i, b := range blocks {
			next := at + uint64(finalOff)
			if i+1 < len(blocks) {
				next = at + uint64(blocks[i+1].off)
			}
			for _, gd := range b.v.key {
				if err := emit(isa.MakeRI(isa.CMPI, isa.IntArgRegs[gd.Param-1], int64(gd.Value))); err != nil {
					return nil, err
				}
				if err := emit(isa.MakeJCC(isa.CondNE, next)); err != nil {
					return nil, err
				}
			}
			if err := emit(isa.MakeRel(isa.JMP, b.v.res.Addr)); err != nil {
				return nil, err
			}
		}
		if err := emit(isa.MakeRel(isa.JMP, fallthru)); err != nil {
			return nil, err
		}
		return code, nil
	})
	if err != nil {
		return err
	}
	for i, b := range blocks {
		b.v.jmpAddr = addr + uint64(b.jmpOff)
		if i+1 < len(blocks) {
			b.v.nextAddr = addr + uint64(blocks[i+1].off)
		} else {
			b.v.nextAddr = addr + uint64(finalOff)
		}
	}
	e.chain = &dispatchChain{addr: addr, size: size, finalJmp: addr + uint64(finalOff)}
	g.patchStub(e.stub, addr)
	return nil
}

// demoteVariantLocked takes one live variant out of service by patching
// its dispatch point away — never freeing code, because the demotion may
// fire from a watchpoint handler while the body is on the emulated call
// stack. The body is reclaimed by the next idle-point compaction. When
// the last live variant demotes, the entry as a whole deoptimizes
// (legacy single-variant semantics: stub to the original, lazy
// respecialization eligible).
func (g *Manager) demoteVariantLocked(e *Entry, v *Variant, reason string) {
	if !v.live || e.released {
		return
	}
	v.live = false
	g.disarmVariantWatches(v)
	e.variants = removeFromVariants(e.variants, v)
	e.retired = append(e.retired, v)
	switch {
	case len(v.key) > 0 && v.jmpAddr != 0:
		g.patchJmp(v.jmpAddr, v.nextAddr)
	case len(v.key) == 0 && e.chain != nil:
		g.patchJmp(e.chain.finalJmp, e.fn)
	case e.stub != 0:
		g.patchStub(e.stub, e.fn)
	}
	v.jmpAddr, v.nextAddr = 0, 0
	mVariantDemotions.Inc()
	emitVariant(obs.KindVariantDemote, e, v, reason)
	if !e.hasLiveLocked() && !e.pending && !e.degraded && !e.deopted {
		if e.stub != 0 {
			g.patchStub(e.stub, e.fn)
		}
		e.deopted = true
		e.respecDone = false
		e.reason = reason
		publishDeopt(reason)
		emitVariant(obs.KindEntryDeopt, e, nil, reason)
	}
}

// retireVariantLocked drops a variant without patching: only valid at
// idle points where the caller rebuilds the dispatch chain (or releases
// the entry) afterwards.
func (g *Manager) retireVariantLocked(v *Variant) {
	if !v.live {
		return
	}
	v.live = false
	g.disarmVariantWatches(v)
	e := v.e
	e.variants = removeFromVariants(e.variants, v)
	e.retired = append(e.retired, v)
	v.jmpAddr, v.nextAddr = 0, 0
}

// compactLocked reclaims retired variant bodies, and the chain itself
// once no live guarded variant needs it. Only called at idle points
// (managed-call entry, install/remove operations, release): demoted code
// may still be on the emulated call stack when the demotion happened.
func (g *Manager) compactLocked(e *Entry) {
	for _, v := range e.retired {
		if v.res != nil && !v.res.Degraded {
			_ = g.m.FreeJIT(v.res.Addr)
		}
		v.res = nil
		v.gr = nil
	}
	e.retired = nil
	if e.chain == nil {
		return
	}
	for _, v := range e.variants {
		if len(v.key) > 0 {
			return // chain still dispatches live guarded variants
		}
	}
	// Route around the chain before freeing it.
	if e.stub != 0 {
		if u := e.uncondLocked(); u != nil {
			g.patchStub(e.stub, u.res.Addr)
		} else {
			g.patchStub(e.stub, e.fn)
		}
	}
	_ = g.m.FreeJIT(e.chain.addr)
	e.chain = nil
}

// evictVariantsOverLimitLocked applies the per-table LRU bound (never
// evicting keep, the just-installed variant). Idle-point only: victims
// are retired and reclaimed by the caller's compact.
func (g *Manager) evictVariantsOverLimitLocked(e *Entry, keep *Variant) {
	for g.pol.MaxVariants > 0 && len(e.variants) > g.pol.MaxVariants {
		var victim *Variant
		for _, v := range e.variants {
			if v == keep {
				continue
			}
			if victim == nil || v.lastUse < victim.lastUse {
				victim = v
			}
		}
		if victim == nil {
			return
		}
		g.retireVariantLocked(victim)
		mVariantEvictions.Inc()
		emitVariant(obs.KindVariantEvict, e, victim, "table-lru")
	}
}

// armVariantWatches installs write-watchpoints over the variant's frozen
// ranges (mgr.mu held). A store into one demotes only this variant.
func (g *Manager) armVariantWatches(v *Variant) {
	e := v.e
	for _, r := range v.cfg.FrozenRanges(v.args) {
		v.watches = append(v.watches, g.m.AddWatch(r.Start, r.End,
			func(*vm.Watch, uint64, int) {
				// Fires from the store path mid-execution, outside mgr.mu
				// (no managed code runs while the lock is held, so this
				// cannot deadlock).
				mWatchHits.Inc()
				g.mu.Lock()
				emitVariant(obs.KindWatchHit, e, v, DeoptAssumption)
				g.demoteVariantLocked(e, v, DeoptAssumption)
				g.mu.Unlock()
			}))
	}
}

// disarmVariantWatches removes the variant's watchpoints (mgr.mu held;
// safe during watch dispatch — the VM's watch list is copy-on-write).
func (g *Manager) disarmVariantWatches(v *Variant) {
	for _, w := range v.watches {
		g.m.RemoveWatch(w)
	}
	v.watches = nil
}

func removeFromVariants(vs []*Variant, v *Variant) []*Variant {
	for i, x := range vs {
		if x == v {
			return append(vs[:i], vs[i+1:]...)
		}
	}
	return vs
}

// freeOutcome releases the code a rewrite outcome carries (refused
// installs must not leak the fresh body or dispatcher).
func freeOutcome(m *vm.Machine, out *brew.Outcome) {
	if out == nil || out.Degraded {
		return
	}
	if out.Guarded != nil {
		_ = m.FreeJIT(out.Guarded.Addr)
	}
	if out.Result != nil && !out.Result.Degraded {
		_ = m.FreeJIT(out.Result.Addr)
	}
}
