package specmgr_test

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/specmgr"
	"repro/internal/stencil"
	"repro/internal/vm"
)

const gridXS, gridYS = 16, 12

func newStencil(t *testing.T) (*vm.Machine, *stencil.Workload) {
	t.Helper()
	m := vm.MustNew()
	w, err := stencil.New(m, gridXS, gridYS)
	if err != nil {
		t.Fatal(err)
	}
	return m, w
}

// loadPoke compiles an emulated store helper into the machine; host-side
// memory writes would bypass the VM store path the watchpoints sit on.
func loadPoke(t *testing.T, m *vm.Machine) uint64 {
	t.Helper()
	l, err := minc.CompileAndLink(m, `
double poke(double *p, double v) { p[0] = v; return v; }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := l.FuncAddr("poke")
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

// TestDeoptOnFrozenStore is the tentpole invariant end to end: a store
// into a frozen MemKnown region deterministically deoptimizes the
// specialization before the next call through the entry, and a managed
// call afterwards lazily re-specializes against the new memory contents.
func TestDeoptOnFrozenStore(t *testing.T) {
	m, w := newStencil(t)
	poke := loadPoke(t, m)
	mgr := specmgr.New(m, specmgr.Policy{Respecialize: true})

	cfg, args := w.ApplyConfig()
	e, err := mgr.Specialize(cfg, w.Apply, args, nil)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 4
	got, err := w.RunSweeps(e.Addr(), false, iters)
	if err != nil {
		t.Fatal(err)
	}
	if want := w.Golden(iters); math.Abs(got-want) > 1e-9 {
		t.Fatalf("specialized checksum = %g, want %g", got, want)
	}

	// Mutate the frozen stencil descriptor: center coefficient -1.0 -> -0.5
	// (s5.p[0].f sits right after the 8-byte point count).
	if _, err := m.CallFloat(poke, []uint64{w.S5 + 8}, []float64{-0.5}); err != nil {
		t.Fatal(err)
	}
	if d, reason := e.Deopted(); !d || reason != specmgr.DeoptAssumption {
		t.Fatalf("after frozen store: deopted=%v reason=%q, want true/%q",
			d, reason, specmgr.DeoptAssumption)
	}

	// Unmanaged calls through the stable address now run the original
	// function, which re-reads the mutated descriptor.
	ref := func(kernel uint64) float64 {
		t.Helper()
		if err := w.ResetMatrices(); err != nil {
			t.Fatal(err)
		}
		v, err := w.RunSweeps(kernel, false, iters)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	want := ref(w.Apply)
	if old := w.Golden(iters); math.Abs(want-old) < 1e-12 {
		t.Fatal("descriptor mutation did not change the reference checksum; test is vacuous")
	}
	if got := ref(e.Addr()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("deoptimized checksum = %g, want %g (stale code survived)", got, want)
	}

	// A managed call triggers one lazy respecialization against the new
	// descriptor.
	cell := w.M1 + uint64((gridXS+1)*8)
	wantCell, err := m.CallFloat(w.Apply, []uint64{cell, gridXS, w.S5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotCell, err := e.CallFloat([]uint64{cell, gridXS, w.S5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotCell-wantCell) > 1e-12 {
		t.Fatalf("respecializing call = %g, want %g", gotCell, wantCell)
	}
	if d, _ := e.Deopted(); d {
		t.Fatal("entry still deopted after respecialization")
	}
	if e.Degraded() {
		t.Fatal("respecialization degraded unexpectedly")
	}
	if got := ref(e.Addr()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("respecialized checksum = %g, want %g", got, want)
	}

	// The new specialization froze the descriptor again: another store
	// deoptimizes again.
	if _, err := m.CallFloat(poke, []uint64{w.S5 + 8}, []float64{-0.25}); err != nil {
		t.Fatal(err)
	}
	if d, _ := e.Deopted(); !d {
		t.Fatal("second frozen store did not deoptimize")
	}
}

// TestGuardMissStorm: consecutive guard misses past the policy limit
// deoptimize the guarded entry; calls stay correct throughout.
func TestGuardMissStorm(t *testing.T) {
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
long addk(long a, long k) { return a + k; }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := l.FuncAddr("addk")
	if err != nil {
		t.Fatal(err)
	}
	mgr := specmgr.New(m, specmgr.Policy{GuardMissLimit: 4})
	e, err := mgr.SpecializeGuarded(brew.NewConfig(), fn,
		[]brew.ParamGuard{{Param: 2, Value: 5}}, []uint64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	call := func(a, k uint64) {
		t.Helper()
		got, err := e.Call(a, k)
		if err != nil || got != a+k {
			t.Fatalf("Call(%d,%d) = %d, %v; want %d", a, k, got, err, a+k)
		}
	}
	call(1, 5) // hit
	for i := uint64(0); i < 3; i++ {
		call(i, 7)
		if d, _ := e.Deopted(); d {
			t.Fatalf("deopted after %d misses, limit is 4", i+1)
		}
	}
	call(9, 7) // 4th consecutive miss
	if d, reason := e.Deopted(); !d || reason != specmgr.DeoptGuardStorm {
		t.Fatalf("deopted=%v reason=%q, want true/%q", d, reason, specmgr.DeoptGuardStorm)
	}
	call(2, 5) // still correct, now through the original
	call(2, 9)
}

// multiFns compiles n trivial distinct functions and returns their
// addresses.
func multiFns(t *testing.T, m *vm.Machine, n int) []uint64 {
	t.Helper()
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("long f%d(long a) { return a + %d; }\n", i, i)
	}
	l, err := minc.CompileAndLink(m, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]uint64, n)
	for i := range fns {
		a, err := l.FuncAddr(fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		fns[i] = a
	}
	return fns
}

// TestLRUEvictionFreesCode: exceeding MaxLive evicts the least recently
// used entries and releasing everything returns the code buffer to its
// baseline (no leaked stubs, bodies or dispatchers).
func TestLRUEvictionFreesCode(t *testing.T) {
	m := vm.MustNew()
	fns := multiFns(t, m, 6)
	baseline := m.JITAlloc.FreeBytes()

	mgr := specmgr.New(m, specmgr.Policy{MaxLive: 3})
	entries := make([]*specmgr.Entry, len(fns))
	for i, fn := range fns {
		e, err := mgr.Specialize(brew.NewConfig(), fn, nil, nil)
		if err != nil {
			t.Fatalf("f%d: %v", i, err)
		}
		entries[i] = e
	}
	if got := mgr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if mgr.Lookup(fns[i]) != nil {
			t.Errorf("f%d should have been evicted", i)
		}
		if _, err := entries[i].Call(1); !errors.Is(err, specmgr.ErrReleased) {
			t.Errorf("evicted f%d: Call err = %v, want ErrReleased", i, err)
		}
	}
	for i := 3; i < 6; i++ {
		e := mgr.Lookup(fns[i])
		if e == nil {
			t.Fatalf("f%d missing", i)
		}
		got, err := e.Call(10)
		if err != nil || got != uint64(10+i) {
			t.Errorf("f%d(10) = %d, %v; want %d", i, got, err, 10+i)
		}
		mgr.Release(e)
	}
	if got := m.JITAlloc.FreeBytes(); got != baseline {
		t.Errorf("code buffer leaked: %d free, baseline %d", got, baseline)
	}
}

// TestConcurrentSpecializeEviction races concurrent Specialize calls (and
// the evictions they trigger, which free JIT space) against each other
// under -race; the machine is idle throughout, which is the documented
// concurrency contract for rewriting.
func TestConcurrentSpecializeEviction(t *testing.T) {
	m := vm.MustNew()
	fns := multiFns(t, m, 8)
	baseline := m.JITAlloc.FreeBytes()
	mgr := specmgr.New(m, specmgr.Policy{MaxLive: 2})

	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(fn uint64) {
			defer wg.Done()
			if _, err := mgr.Specialize(brew.NewConfig(), fn, nil, nil); err != nil {
				t.Errorf("specialize 0x%x: %v", fn, err)
			}
		}(fn)
	}
	wg.Wait()
	if got := mgr.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	for i, fn := range fns {
		if e := mgr.Lookup(fn); e != nil {
			got, err := e.Call(7)
			if err != nil || got != uint64(7+i) {
				t.Errorf("f%d(7) = %d, %v; want %d", i, got, err, 7+i)
			}
			mgr.Release(e)
		}
	}
	if got := m.JITAlloc.FreeBytes(); got != baseline {
		t.Errorf("code buffer leaked: %d free, baseline %d", got, baseline)
	}
}

// TestDegradedEntryStillRuns: a Specialize whose rewrite fails (injected
// install fault) yields a usable entry running the original function.
func TestDegradedEntryStillRuns(t *testing.T) {
	m := vm.MustNew()
	fns := multiFns(t, m, 1)
	cfg := brew.NewConfig()
	cfg.Inject = func(site string) error {
		if site == brew.SiteInstall {
			return fmt.Errorf("%w: injected", brew.ErrCodeBufferFull)
		}
		return nil
	}
	mgr := specmgr.New(m, specmgr.Policy{})
	e, err := mgr.Specialize(cfg, fns[0], nil, nil)
	if !errors.Is(err, brew.ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if !e.Degraded() {
		t.Fatal("entry not marked degraded")
	}
	got, err := e.Call(41)
	if err != nil || got != 41 {
		t.Fatalf("degraded Call(41) = %d, %v; want 41", got, err)
	}
	// The stable address works for unmanaged callers too.
	got, err = m.Call(e.Addr(), 1)
	if err != nil || got != 1 {
		t.Fatalf("degraded stub call = %d, %v; want 1", got, err)
	}
}
