package specmgr_test

import (
	"testing"

	"repro/internal/brew"
	"repro/internal/specmgr"
)

// TestAdoptPromote covers the rewrite-behind lifecycle: a pending entry
// routes to the original function, Promote hot-patches the stub, and the
// same caller-held address starts running specialized code.
func TestAdoptPromote(t *testing.T) {
	m, w := newStencil(t)
	mgr := specmgr.New(m, specmgr.Policy{})

	cfg, args := w.ApplyConfig()
	e := mgr.AdoptPending(cfg, w.Apply, args, nil, nil)
	if !e.Pending() || e.Degraded() {
		t.Fatalf("fresh entry: pending=%v degraded=%v", e.Pending(), e.Degraded())
	}
	addr := e.Addr()
	if addr == w.Apply {
		t.Fatal("adopted entry has no patchable stub")
	}
	// Pending: the stub must route to the original function and agree
	// with calling it directly.
	cell := w.M1 + uint64((gridXS+1)*8)
	callArgs := []uint64{cell, gridXS, w.S5}
	want, err := m.CallFloat(w.Apply, callArgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := m.CallFloat(addr, callArgs, nil); err != nil || got != want {
		t.Fatalf("pending call = %g, %v; want %g", got, err, want)
	}

	out, rerr := brew.Do(m, &brew.Request{
		Config: cfg, Fn: w.Apply, Args: args, Mode: brew.ModeDegrade,
	})
	if rerr != nil {
		t.Fatalf("Do: %v", rerr)
	}
	if !mgr.Promote(e, out, nil) {
		t.Fatal("Promote reported failure for a successful outcome")
	}
	if e.Pending() || e.Degraded() {
		t.Fatalf("promoted entry: pending=%v degraded=%v", e.Pending(), e.Degraded())
	}
	if e.Result() != out.Result {
		t.Fatal("promoted entry does not carry the rewrite result")
	}
	if e.Addr() != addr {
		t.Fatal("promotion changed the handed-out address")
	}
	// The same address now runs the specialization; results stay correct.
	if got, err := m.CallFloat(addr, callArgs, nil); err != nil || got != want {
		t.Fatalf("promoted call = %g, %v; want %g", got, err, want)
	}
	// Second Promote of the same entry must be a no-op.
	if mgr.Promote(e, out, nil) {
		t.Fatal("double Promote succeeded")
	}
}

// TestAdoptPromoteDegraded: a degraded outcome leaves the entry at generic
// speed with the degradation reason, and never installs code.
func TestAdoptPromoteDegraded(t *testing.T) {
	m, w := newStencil(t)
	mgr := specmgr.New(m, specmgr.Policy{})

	cfg, args := w.ApplyConfig()
	cfg.Inject = func(site string) error {
		if site == brew.SiteTrace {
			return brew.ErrUnsupported
		}
		return nil
	}
	e := mgr.AdoptPending(cfg, w.Apply, args, nil, nil)
	out, rerr := brew.Do(m, &brew.Request{
		Config: cfg, Fn: w.Apply, Args: args, Mode: brew.ModeDegrade,
	})
	if rerr == nil {
		t.Fatal("expected a degraded outcome")
	}
	if mgr.Promote(e, out, rerr) {
		t.Fatal("Promote succeeded on a degraded outcome")
	}
	if e.Pending() || !e.Degraded() {
		t.Fatalf("entry after degraded promote: pending=%v degraded=%v", e.Pending(), e.Degraded())
	}
	if _, reason := e.Deopted(); reason != brew.ReasonUnsupported {
		t.Fatalf("reason = %q, want %q", reason, brew.ReasonUnsupported)
	}
	cell := w.M1 + uint64((gridXS+1)*8)
	if _, err := m.CallFloat(e.Addr(), []uint64{cell, args[1], args[2]}, nil); err != nil {
		t.Fatalf("degraded entry call: %v", err)
	}
	mgr.Release(e)
}

// TestAdoptReleaseBeforePromote: releasing a pending entry makes Promote
// free the fresh code instead of leaking it.
func TestAdoptReleaseBeforePromote(t *testing.T) {
	m, w := newStencil(t)
	mgr := specmgr.New(m, specmgr.Policy{})
	baseline := m.JITFreeBytes()

	cfg, args := w.ApplyConfig()
	e := mgr.AdoptPending(cfg, w.Apply, args, nil, nil)
	out, rerr := brew.Do(m, &brew.Request{
		Config: cfg, Fn: w.Apply, Args: args, Mode: brew.ModeDegrade,
	})
	if rerr != nil {
		t.Fatalf("Do: %v", rerr)
	}
	mgr.Release(e)
	if mgr.Promote(e, out, nil) {
		t.Fatal("Promote succeeded on a released entry")
	}
	if got := m.JITFreeBytes(); got != baseline {
		t.Fatalf("leaked JIT bytes: free %d, baseline %d", got, baseline)
	}
}

// TestAdoptCoResident: detached entries allow several specializations of
// the same function to live side by side — the per-function table slot
// stays untouched.
func TestAdoptCoResident(t *testing.T) {
	m, w := newStencil(t)
	mgr := specmgr.New(m, specmgr.Policy{MaxLive: 1})

	cfg, args := w.ApplyConfig()
	var entries []*specmgr.Entry
	for i := 0; i < 3; i++ {
		e := mgr.AdoptPending(cfg, w.Apply, args, nil, nil)
		out, rerr := brew.Do(m, &brew.Request{
			Config: cfg, Fn: w.Apply, Args: args, Mode: brew.ModeDegrade,
		})
		if rerr != nil {
			t.Fatalf("Do %d: %v", i, rerr)
		}
		if !mgr.Promote(e, out, nil) {
			t.Fatalf("Promote %d failed", i)
		}
		entries = append(entries, e)
	}
	if mgr.Len() != 0 {
		t.Fatalf("detached entries occupied the table: Len = %d", mgr.Len())
	}
	cell := w.M1 + uint64((gridXS+1)*8)
	for i, e := range entries {
		if e.Degraded() {
			t.Fatalf("entry %d degraded (MaxLive eviction reached detached entries?)", i)
		}
		if _, err := m.CallFloat(e.Addr(), []uint64{cell, args[1], args[2]}, nil); err != nil {
			t.Fatalf("entry %d call: %v", i, err)
		}
	}
	for _, e := range entries {
		mgr.Release(e)
	}
}
