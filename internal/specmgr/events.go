package specmgr

import (
	"repro/internal/brew"
	"repro/internal/obs"
)

// Flight-recorder wiring: every variant lifecycle transition the manager
// performs (install, evict, demote, entry deopt, watchpoint hit, guard
// storm, degrade) emits one structured obs.Event, so a chaos-test
// post-mortem or brew-top can replay exactly what happened and why. The
// emit helpers self-gate on obs.Enabled like the telemetry counters and
// are safe under mgr.mu (the recorder is lock-free).

func obsTier(eff brew.Effort) obs.Tier {
	if eff == brew.EffortQuick {
		return obs.TierQuick
	}
	return obs.TierFull
}

// emitVariant records a lifecycle event about one variant (v may be nil
// for entry-level events).
func emitVariant(kind obs.Kind, e *Entry, v *Variant, reason string) {
	if !obs.Enabled() {
		return
	}
	ev := obs.Event{Kind: kind, Fn: e.fn, Reason: reason, Tier: obs.TierNone}
	if v != nil {
		ev.Tier = obsTier(v.tier)
		if v.res != nil {
			ev.Addr = v.res.Addr
		}
	}
	obs.Emit(ev)
}

// publishDegrade counts a degradation and records it with its reason.
func publishDegrade(e *Entry, reason string) {
	mDegraded.Inc()
	if !obs.Enabled() {
		return
	}
	obs.Emit(obs.Event{Kind: obs.KindDegrade, Fn: e.fn, Reason: reason, Tier: obs.TierNone})
}
