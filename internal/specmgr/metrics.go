package specmgr

import "repro/internal/telemetry"

// Manager metrics; counters self-gate on telemetry.Enabled.
var (
	mSpecializations   = telemetry.Default.Counter("specmgr.specializations")
	mDegraded          = telemetry.Default.Counter("specmgr.degraded")
	mDeopts            = telemetry.Default.Counter("specmgr.deopts")
	mRespecializations = telemetry.Default.Counter("specmgr.respecializations")
	mRespecFailures    = telemetry.Default.Counter("specmgr.respec_failures")
	mEvictions         = telemetry.Default.Counter("specmgr.evictions")
	mWatchHits         = telemetry.Default.Counter("specmgr.watch_hits")
	mVariantDemotions  = telemetry.Default.Counter("specmgr.variant_demotions")
	mVariantEvictions  = telemetry.Default.Counter("specmgr.variant_evictions")

	mDeoptBy = map[string]*telemetry.Counter{
		DeoptAssumption: telemetry.Default.Counter("specmgr.deopt.assumption_violated"),
		DeoptGuardStorm: telemetry.Default.Counter("specmgr.deopt.guard_miss_storm"),
		DeoptManual:     telemetry.Default.Counter("specmgr.deopt.manual"),
	}
)

func publishDeopt(reason string) {
	mDeopts.Inc()
	mDeoptBy[reason].Inc() // nil-safe for custom reasons
}
