package specmgr_test

import (
	"math"
	"testing"

	"repro/internal/brew"
	"repro/internal/specmgr"
)

// TestRepromoteHotSwap: a successful Repromote swaps a live tier-0
// entry's body for the full-effort code behind the same stable address,
// updates the retained configuration and tier, and frees the old body —
// Release afterwards returns the JIT space to the pre-specialization
// baseline.
func TestRepromoteHotSwap(t *testing.T) {
	m, w := newStencil(t)
	baseline := m.JITFreeBytes()
	mgr := specmgr.New(m, specmgr.Policy{})

	cfg, args := w.ApplyConfig()
	cfg.Effort = brew.EffortQuick
	e, err := mgr.Specialize(cfg, w.Apply, args, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Tier(); got != brew.EffortQuick {
		t.Fatalf("tier after quick specialize %s, want quick", got)
	}
	stable := e.Addr()
	quickAddr := e.Result().Addr

	// Managed calls feed the stub-side hotness counter.
	cell := w.M1 + uint64((gridXS+1)*8)
	callArgs := []uint64{cell, gridXS, w.S5}
	want, err := m.CallFloat(w.Apply, callArgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CallFloat(callArgs, nil); err != nil {
		t.Fatal(err)
	}
	if calls, _ := e.Hotness(); calls != 1 {
		t.Fatalf("hotness calls = %d after one managed call", calls)
	}

	fcfg, fargs := w.ApplyConfig()
	out, rerr := brew.Do(m, &brew.Request{Config: fcfg, Fn: w.Apply, Args: fargs})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !mgr.Repromote(e, fcfg, out, rerr) {
		t.Fatal("Repromote refused a live tier-0 entry")
	}
	if got := e.Tier(); got != brew.EffortFull {
		t.Fatalf("tier after Repromote %s, want full", got)
	}
	if e.Addr() != stable {
		t.Fatalf("stable address moved: %#x -> %#x", stable, e.Addr())
	}
	if e.Result().Addr == quickAddr {
		t.Fatal("Repromote kept the tier-0 body")
	}
	got, err := m.CallFloat(e.Addr(), callArgs, nil)
	if err != nil || math.Abs(got-want) > 1e-12 {
		t.Fatalf("promoted call = %g, %v; want %g", got, err, want)
	}

	// The old body was freed by the swap and the new one by Release: no
	// JIT space leaks across the promote-then-release lifecycle.
	mgr.Release(e)
	if free := m.JITFreeBytes(); free != baseline {
		t.Fatalf("JIT leak: free %d, baseline %d", free, baseline)
	}
}

// TestRepromoteRefusesReleased: promoting an entry that was released while
// the background rewrite ran is refused, and the freshly built code is
// freed rather than leaked.
func TestRepromoteRefusesReleased(t *testing.T) {
	m, w := newStencil(t)
	mgr := specmgr.New(m, specmgr.Policy{})

	cfg, args := w.ApplyConfig()
	cfg.Effort = brew.EffortQuick
	e, err := mgr.Specialize(cfg, w.Apply, args, nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Release(e)

	baseline := m.JITFreeBytes()
	fcfg, fargs := w.ApplyConfig()
	out, rerr := brew.Do(m, &brew.Request{Config: fcfg, Fn: w.Apply, Args: fargs})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if mgr.Repromote(e, fcfg, out, rerr) {
		t.Fatal("Repromote accepted a released entry")
	}
	if free := m.JITFreeBytes(); free != baseline {
		t.Fatalf("refused Repromote leaked the fresh code: free %d, baseline %d", free, baseline)
	}
}

// TestRepromoteRefusesDeopted: an entry deoptimized (frozen-region store)
// while the background rewrite ran keeps routing to the original — the
// stale promotion is refused and its code freed, because it was built
// against assumptions that no longer hold.
func TestRepromoteRefusesDeopted(t *testing.T) {
	m, w := newStencil(t)
	poke := loadPoke(t, m)
	mgr := specmgr.New(m, specmgr.Policy{})

	cfg, args := w.ApplyConfig()
	cfg.Effort = brew.EffortQuick
	e, err := mgr.Specialize(cfg, w.Apply, args, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The background rewrite races a mutation of the frozen descriptor:
	// the rewrite snapshot here is taken before the store, so its code
	// bakes in the stale coefficient. (Deoptimization itself frees no
	// code, so after the refused swap frees the stale rewrite the JIT
	// space must be exactly back at this baseline.)
	baseline := m.JITFreeBytes()
	fcfg, fargs := w.ApplyConfig()
	out, rerr := brew.Do(m, &brew.Request{Config: fcfg, Fn: w.Apply, Args: fargs})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if _, err := m.CallFloat(poke, []uint64{w.S5 + 8}, []float64{-0.5}); err != nil {
		t.Fatal(err)
	}
	if d, _ := e.Deopted(); !d {
		t.Fatal("frozen store did not deoptimize the entry")
	}

	if mgr.Repromote(e, fcfg, out, rerr) {
		t.Fatal("Repromote accepted a deoptimized entry")
	}
	if free := m.JITFreeBytes(); free != baseline {
		t.Fatalf("refused Repromote leaked the fresh code: free %d, baseline %d", free, baseline)
	}

	// The entry still serves the original, which sees the new coefficient.
	cell := w.M1 + uint64((gridXS+1)*8)
	callArgs := []uint64{cell, gridXS, w.S5}
	want, err := m.CallFloat(w.Apply, callArgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.CallFloat(e.Addr(), callArgs, nil)
	if err != nil || math.Abs(got-want) > 1e-12 {
		t.Fatalf("deopted entry = %g, %v; want %g", got, err, want)
	}
}
