package specmgr_test

import (
	"math"
	"testing"

	"repro/internal/brew"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/specmgr"
)

// chaosPoints are the armed injection points, iterated by the
// fault→event correspondence check each seed.
var chaosPoints = []faultinject.Point{
	faultinject.PointOpcode, faultinject.PointBudget, faultinject.PointPanic,
	faultinject.PointJITAlloc, faultinject.PointDispatch,
}

// faultEventsSince counts the flight recorder's KindFault events recorded
// at or after seq, keyed by injection point.
func faultEventsSince(seq uint64) map[string]uint64 {
	counts := make(map[string]uint64)
	for _, e := range obs.Events() {
		if e.Seq >= seq && e.Kind == obs.KindFault {
			counts[e.Reason]++
		}
	}
	return counts
}

// TestChaosNeverWrongNeverCrashed drives stencil workloads through
// seed-varied fault injection until at least 1000 faults have fired
// (about 150 under -short) and asserts the robustness invariant on every
// run: the checksum always equals the reference, no call ever fails, no
// panic ever escapes. Failures may only cost speed — degraded and
// deoptimized entries run the original kernel.
//
// One machine and workload are shared across seeds (compilation is the
// dominant cost); every seed releases its entries and restores the
// mutated descriptor, and the final code-buffer accounting is checked so
// chaos cannot leak JIT space either.
func TestChaosNeverWrongNeverCrashed(t *testing.T) {
	obs.Reset()
	obs.Enable()
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("flight recorder tail:\n%s", obs.FormatEvents(obs.TailEvents(64)))
		}
		obs.Disable()
		obs.Reset()
	})
	m, w := newStencil(t)
	poke := loadPoke(t, m)
	baseline := m.JITAlloc.FreeBytes()

	const iters = 3
	target := uint64(1000)
	if testing.Short() {
		target = 150
	}
	cell := w.M1 + uint64((gridXS+1)*8)

	var fired uint64
	runs, degradedRuns, deoptRuns, variantDeopts := 0, 0, 0, 0
	for seed := int64(1); fired < target; seed++ {
		runs++
		seqBefore := obs.Default.Recorder.Seq()

		inj := faultinject.New(seed)
		// Rates vary by seed so every point gets rounds where it
		// dominates and rounds where it is silent. SiteTrace points fire
		// per traced instruction, so their rates stay small.
		inj.Arm(faultinject.PointOpcode, 0.002*float64(seed%3))
		inj.Arm(faultinject.PointBudget, 0.002*float64((seed/3)%3))
		inj.Arm(faultinject.PointPanic, 0.001*float64((seed/9)%3))
		inj.Arm(faultinject.PointJITAlloc, 0.5*float64(seed%2))
		inj.Arm(faultinject.PointDispatch, 0.5*float64((seed/2)%2))

		cfg, args := w.ApplyConfig()
		cfg.Inject = inj.Hook()
		if seed%5 == 0 {
			// Genuine (non-injected) budget exhaustion on some seeds.
			cfg.Budget = &brew.Budget{MaxTracedInstrs: int(10 + seed%200)}
		}
		mgr := specmgr.New(m, specmgr.Policy{Respecialize: true, GuardMissLimit: 3})

		var e *specmgr.Entry
		var err error
		if seed%4 == 0 {
			e, err = mgr.SpecializeGuarded(cfg, w.Apply,
				[]brew.ParamGuard{{Param: 2, Value: gridXS}}, args, nil)
		} else {
			e, err = mgr.Specialize(cfg, w.Apply, args, nil)
		}
		if err != nil && e == nil {
			t.Fatalf("seed %d: specialize returned no entry: %v", seed, err)
		}
		if e.Degraded() {
			degradedRuns++
		}

		// On guarded seeds, grow the entry into a variant table: a sibling
		// for a different guard value, rewritten without the frozen
		// descriptor and under the same injector (the install may fail;
		// that must only cost speed). The frozen-store invariant below then
		// exercises variant-level deopt: only the frozen variant demotes.
		frozen := e.VariantFor([]uint64{0, gridXS, 0})
		var sib *specmgr.Variant
		if seed%4 == 0 {
			scfg := brew.NewConfig()
			scfg.Inject = inj.Hook()
			sg := []brew.ParamGuard{{Param: 2, Value: gridXS + 1}}
			sout, serr := brew.Do(m, &brew.Request{
				Config: scfg, Fn: w.Apply, Guards: sg,
				Args: []uint64{0, 0, 0}, Mode: brew.ModeDegrade,
			})
			sib, _ = mgr.InstallVariant(e, scfg, sg, []uint64{0, 0, 0}, nil, sout, serr)
		}

		// Invariant 1: the checksum matches the golden reference whether
		// the entry is specialized or degraded.
		if err := w.ResetMatrices(); err != nil {
			t.Fatal(err)
		}
		got, err := w.RunSweeps(e.Addr(), false, iters)
		if err != nil {
			t.Fatalf("seed %d: sweep: %v", seed, err)
		}
		if want := w.Golden(iters); math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: wrong result %g, want %g (degraded=%v)",
				seed, got, want, e.Degraded())
		}

		if seed%2 == 0 {
			// Invariant 2: mutating the frozen descriptor never yields a
			// stale result. Non-degraded entries must deoptimize; degraded
			// ones re-read memory anyway.
			wasDegraded := e.Degraded()
			if _, err := m.CallFloat(poke, []uint64{w.S5 + 8}, []float64{-0.5}); err != nil {
				t.Fatalf("seed %d: poke: %v", seed, err)
			}
			if sib != nil && sib.Live() {
				// A live sibling without the assumption keeps the entry
				// serving: the store may only demote the frozen variant.
				if frozen != nil && frozen.Live() {
					t.Fatalf("seed %d: frozen store did not demote the frozen variant", seed)
				}
				if d, _ := e.Deopted(); d {
					t.Fatalf("seed %d: entry deopted despite a live sibling", seed)
				}
				if frozen != nil {
					variantDeopts++
				}
			} else if d, _ := e.Deopted(); !d && !wasDegraded {
				t.Fatalf("seed %d: frozen store did not deoptimize", seed)
			}
			if d, _ := e.Deopted(); d {
				deoptRuns++
			}

			// A managed call may lazily respecialize — under the same
			// injector, so the attempt itself can fail into degradation.
			wantCell, err := m.CallFloat(w.Apply, []uint64{cell, gridXS, w.S5}, nil)
			if err != nil {
				t.Fatalf("seed %d: reference cell: %v", seed, err)
			}
			gotCell, err := e.CallFloat([]uint64{cell, gridXS, w.S5}, nil)
			if err != nil {
				t.Fatalf("seed %d: managed cell call: %v", seed, err)
			}
			if math.Abs(gotCell-wantCell) > 1e-12 {
				t.Fatalf("seed %d: cell = %g, want %g after mutation", seed, gotCell, wantCell)
			}

			// Full-sweep agreement with the original kernel on the mutated
			// descriptor.
			if err := w.ResetMatrices(); err != nil {
				t.Fatal(err)
			}
			want, err := w.RunSweeps(w.Apply, false, iters)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.ResetMatrices(); err != nil {
				t.Fatal(err)
			}
			got, err := w.RunSweeps(e.Addr(), false, iters)
			if err != nil {
				t.Fatalf("seed %d: post-mutation sweep: %v", seed, err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: stale result after mutation: %g, want %g", seed, got, want)
			}

			// Restore the descriptor for the next seed.
			if _, err := m.CallFloat(poke, []uint64{w.S5 + 8}, []float64{-1.0}); err != nil {
				t.Fatalf("seed %d: restore: %v", seed, err)
			}
		}

		mgr.Release(e)

		// Fault→event correspondence: every fault this seed's injector
		// fired must have left a recorded KindFault event, per point.
		recorded := faultEventsSince(seqBefore)
		for _, p := range chaosPoints {
			if got, want := recorded[string(p)], inj.Fired(p); got != want {
				t.Fatalf("seed %d: %d recorded %s fault events, injector fired %d",
					seed, got, p, want)
			}
		}
		// Lifecycle correspondence: an entry-level deopt this seed must
		// have left a deopt or demotion event.
		if d, _ := e.Deopted(); d {
			lifecycle := 0
			for _, ev := range obs.Events() {
				if ev.Seq < seqBefore {
					continue
				}
				switch ev.Kind {
				case obs.KindEntryDeopt, obs.KindVariantDemote, obs.KindWatchHit:
					lifecycle++
				}
			}
			if lifecycle == 0 {
				t.Fatalf("seed %d: entry deopted with no recorded lifecycle event", seed)
			}
		}

		fired += inj.TotalFired()
	}

	if got := m.JITAlloc.FreeBytes(); got != baseline {
		t.Errorf("chaos leaked code-buffer space: %d free, baseline %d", got, baseline)
	}
	t.Logf("chaos: %d runs, %d injected faults, %d degraded, %d deopts, %d variant-level deopts",
		runs, fired, degradedRuns, deoptRuns, variantDeopts)
}
