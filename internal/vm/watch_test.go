package vm_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/vm"
)

// watchProg stores with several widths around the watched range boundary.
// buf layout (byte offsets): the watch covers [buf+8, buf+24).
const watchProg = `
f:
    movi  r2, buf
    movi  r1, 0x41
    store [r2], r1        ; [buf, buf+8)    - outside, ends exactly at start
    store [r2+24], r1     ; [buf+24, buf+32) - outside, begins exactly at end
    storeb [r2+7], r1     ; [buf+7, buf+8)  - outside, last byte before
    store [r2+8], r1      ; [buf+8, buf+16) - inside, at start
    storeb [r2+23], r1    ; [buf+23, buf+24) - inside, last byte
    store [r2+4], r1      ; [buf+4, buf+12) - straddles the start edge
    store [r2+20], r1     ; [buf+20, buf+28) - straddles the end edge
    movi  r0, 0
    ret
.data
buf:
    .quad 0, 0, 0, 0, 0
`

// TestWatchOverlap checks the watchpoint overlap semantics: a store hits a
// watch iff its byte range intersects [Start, End), including stores that
// straddle a region edge (the deopt-correctness case: a partial overwrite
// of a frozen struct still invalidates the specialization).
func TestWatchOverlap(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, watchProg)
	if err != nil {
		t.Fatal(err)
	}
	buf := im.MustEntry("buf")

	type hit struct {
		addr uint64
		size int
	}
	var hits []hit
	w := m.AddWatch(buf+8, buf+24, func(_ *vm.Watch, addr uint64, size int) {
		hits = append(hits, hit{addr, size})
	})
	if _, err := m.Call(im.MustEntry("f")); err != nil {
		t.Fatal(err)
	}
	want := []hit{
		{buf + 8, 8},
		{buf + 23, 1},
		{buf + 4, 8},
		{buf + 20, 8},
	}
	if len(hits) != len(want) {
		t.Fatalf("got %d hits %v, want %d %v", len(hits), hits, len(want), want)
	}
	for i, h := range want {
		if hits[i] != h {
			t.Errorf("hit #%d: got [0x%x]%d, want [0x%x]%d", i, hits[i].addr, hits[i].size, h.addr, h.size)
		}
	}

	// After removal the same run must not fire.
	m.RemoveWatch(w)
	hits = nil
	if _, err := m.Call(im.MustEntry("f")); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("removed watch still fired: %v", hits)
	}
	if got := len(m.Watches()); got != 0 {
		t.Fatalf("watch list not empty after removal: %d", got)
	}
}

// TestWatchSelfRemoval checks that a handler may remove its own watch while
// the dispatch is in flight (the deoptimization path does exactly this).
func TestWatchSelfRemoval(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
f:
    movi  r2, buf
    movi  r1, 7
    store [r2], r1
    store [r2+8], r1
    movi  r0, 0
    ret
.data
buf:
    .quad 0, 0
`)
	if err != nil {
		t.Fatal(err)
	}
	buf := im.MustEntry("buf")
	fired := 0
	var w *vm.Watch
	w = m.AddWatch(buf, buf+16, func(_ *vm.Watch, _ uint64, _ int) {
		fired++
		m.RemoveWatch(w)
	})
	if _, err := m.Call(im.MustEntry("f")); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("self-removing watch fired %d times, want 1", fired)
	}
}

// TestWatchStackStores checks watches also see stack traffic (PUSH), since
// the overlap filter, not the segment, decides relevance.
func TestWatchPushVisible(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
f:
    push r1
    pop  r1
    movi r0, 0
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	// Watch the whole stack segment.
	m.AddWatch(vm.StackTop-vm.StackSize, vm.StackTop, func(_ *vm.Watch, _ uint64, _ int) {
		fired++
	})
	if _, err := m.Call(im.MustEntry("f")); err != nil {
		t.Fatal(err)
	}
	// Call pushes the HALT return address, then the explicit push.
	if fired != 2 {
		t.Fatalf("stack watch fired %d times, want 2", fired)
	}
}

// TestInstallJITFailureFreesReservation checks the code-buffer leak fix:
// when gen fails after the reservation, the space must be returned, so a
// storm of failing installs does not exhaust the buffer.
func TestInstallJITFailureFreesReservation(t *testing.T) {
	m := vm.MustNew()
	free0 := m.JITAlloc.FreeBytes()
	genErr := func(addr uint64) ([]byte, error) {
		return nil, errFromTest
	}
	for i := 0; i < 64; i++ {
		if _, err := m.InstallJIT(1024, genErr); err == nil {
			t.Fatal("InstallJIT succeeded with failing gen")
		}
	}
	// Size-mismatch path must free too.
	if _, err := m.InstallJIT(1024, func(addr uint64) ([]byte, error) {
		return make([]byte, 8), nil
	}); err == nil {
		t.Fatal("InstallJIT accepted a size mismatch")
	}
	if got := m.JITAlloc.FreeBytes(); got != free0 {
		t.Fatalf("failed installs leaked code buffer: free %d -> %d", free0, got)
	}
	// And a panicking gen must unwind without leaking either.
	func() {
		defer func() { _ = recover() }()
		_, _ = m.InstallJIT(64, func(addr uint64) ([]byte, error) { panic("boom") })
	}()
	if got := m.JITAlloc.FreeBytes(); got != free0 {
		t.Fatalf("panicking install leaked code buffer: free %d -> %d", free0, got)
	}
}

var errFromTest = errTest{}

type errTest struct{}

func (errTest) Error() string { return "synthetic failure" }
