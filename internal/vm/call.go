package vm

import (
	"errors"
	"fmt"

	"repro/internal/isa"
)

// ErrTooManyArgs reports a call with more arguments than the register ABI
// carries.
var ErrTooManyArgs = errors.New("vm: too many arguments for register ABI")

// DefaultStepLimit bounds top-level calls so runaway generated code cannot
// hang the host; raise via Machine.StepLimit for large benchmarks.
const DefaultStepLimit = 2_000_000_000

func (m *Machine) stepLimit() int64 {
	if m.UserStepLimit > 0 {
		return m.UserStepLimit
	}
	return DefaultStepLimit
}

// Call invokes the function at fn through the VX64 ABI with integer
// arguments and returns the integer result from R0. The machine's register
// file is clobbered as a real call would.
func (m *Machine) Call(fn uint64, args ...uint64) (uint64, error) {
	if err := m.beginCall(fn, args, nil); err != nil {
		return 0, err
	}
	err := m.Run(m.stepLimit())
	m.PublishTelemetry()
	if err != nil {
		return 0, err
	}
	return m.CPU.R[isa.IntRet], nil
}

// CallFloat invokes fn and returns the floating-point result from F0.
// Integer arguments go to R1.., floating-point arguments to F1.. per ABI.
func (m *Machine) CallFloat(fn uint64, intArgs []uint64, fArgs []float64) (float64, error) {
	if err := m.beginCall(fn, intArgs, fArgs); err != nil {
		return 0, err
	}
	err := m.Run(m.stepLimit())
	m.PublishTelemetry()
	if err != nil {
		return 0, err
	}
	return m.CPU.F[0], nil
}

func (m *Machine) beginCall(fn uint64, intArgs []uint64, fArgs []float64) error {
	if len(intArgs) > len(isa.IntArgRegs) || len(fArgs) > len(isa.FloatArgRegs) {
		return fmt.Errorf("%w: %d int, %d float", ErrTooManyArgs, len(intArgs), len(fArgs))
	}
	for i, v := range intArgs {
		m.CPU.R[isa.IntArgRegs[i]] = v
	}
	for i, v := range fArgs {
		m.CPU.F[isa.FloatArgRegs[i]] = v
	}
	// Align the stack and push the HALT stub as return address.
	m.CPU.R[isa.SP] &^= 7
	if err := m.push(m.haltAddr); err != nil {
		return err
	}
	if m.Prof != nil {
		// Root the shadow call stack at the entry function; the final RET
		// (to the HALT stub) pops it again.
		m.Prof.stack = m.Prof.stack[:0]
		m.Prof.pushCall(fn)
	}
	m.CPU.PC = fn
	return nil
}

// AllocData reserves n bytes in the globals segment.
func (m *Machine) AllocData(n uint64) (uint64, error) { return m.DataAlloc.Alloc(n) }

// AllocHeap reserves n bytes on the simulated heap.
func (m *Machine) AllocHeap(n uint64) (uint64, error) { return m.HeapAlloc.Alloc(n) }

// WriteF64Slice stores vals consecutively at addr.
func (m *Machine) WriteF64Slice(addr uint64, vals []float64) error {
	for i, v := range vals {
		if err := m.Mem.WriteF64(addr+uint64(8*i), v); err != nil {
			return err
		}
	}
	return nil
}

// ReadF64Slice loads n float64 values starting at addr.
func (m *Machine) ReadF64Slice(addr uint64, n int) ([]float64, error) {
	out := make([]float64, n)
	for i := range out {
		v, err := m.Mem.ReadF64(addr + uint64(8*i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// WriteI64Slice stores vals consecutively at addr.
func (m *Machine) WriteI64Slice(addr uint64, vals []int64) error {
	for i, v := range vals {
		if err := m.Mem.Write64(addr+uint64(8*i), uint64(v)); err != nil {
			return err
		}
	}
	return nil
}
