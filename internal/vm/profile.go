package vm

import (
	"fmt"
	"sort"
	"strings"
)

// Profiler is a sampling profiler for the simulated machine: every
// Interval emulated cycles it records the current PC together with a walk
// of the simulated call stack (maintained as a shadow stack of call
// targets, so sampling never touches simulated memory). Samples are
// symbolized at capture time through the Symbolize hook — typically
// (*minc.LineTable).Lookup — and aggregated into folded (flamegraph)
// stacks and per-function/per-line leaf counts.
//
// The profiler only costs anything when attached: the emulator's fast path
// pays one nil check per instruction.
type Profiler struct {
	// Interval is the sampling period in emulated cycles.
	Interval uint64
	// Symbolize maps a simulated PC to a function name and source line.
	// PCs it rejects (e.g. rewritten JIT code) render as hex addresses.
	Symbolize func(pc uint64) (fn string, line int, ok bool)
	// OnSample, when non-nil, observes every raw sample PC before
	// aggregation. brewsvc attaches its hotness accounting here: samples
	// landing in tier-0 specialized code feed the promotion counter. The
	// hook runs on the emulation goroutine and must be cheap and must not
	// drive emulated execution.
	OnSample func(pc uint64)

	nextAt uint64
	stack  []uint64 // call targets of the active simulated frames, outermost first

	total  uint64
	folded map[string]uint64
	fns    map[string]uint64
	lines  map[lineKey]uint64
}

type lineKey struct {
	fn   string
	line int
}

// NewProfiler returns a profiler sampling every interval cycles.
func NewProfiler(interval uint64, symbolize func(pc uint64) (string, int, bool)) *Profiler {
	if interval == 0 {
		interval = 10_000
	}
	return &Profiler{
		Interval:  interval,
		Symbolize: symbolize,
		folded:    map[string]uint64{},
		fns:       map[string]uint64{},
		lines:     map[lineKey]uint64{},
	}
}

// AttachProfiler starts sampling on this machine. Passing nil detaches.
func (m *Machine) AttachProfiler(p *Profiler) {
	m.Prof = p
	if p != nil {
		p.nextAt = m.Stats.Cycles + p.Interval
	}
}

func (p *Profiler) name(pc uint64) (string, int) {
	if p.Symbolize != nil {
		if fn, line, ok := p.Symbolize(pc); ok {
			return fn, line
		}
	}
	return fmt.Sprintf("0x%x", pc), 0
}

func (p *Profiler) pushCall(target uint64) { p.stack = append(p.stack, target) }

func (p *Profiler) popCall() {
	// Tolerate an empty shadow stack: the RET of a top-level call returns
	// to the HALT stub without a matching simulated CALL.
	if n := len(p.stack); n > 0 {
		p.stack = p.stack[:n-1]
	}
}

func (p *Profiler) sample(cycles, pc uint64) {
	p.total++
	if p.OnSample != nil {
		p.OnSample(pc)
	}
	fn, line := p.name(pc)
	// The innermost shadow-stack entry is the function the PC is in; the
	// leaf frame comes from the PC itself, so walk only the callers.
	callers := p.stack
	if n := len(callers); n > 0 {
		callers = callers[:n-1]
	}
	var b strings.Builder
	for _, target := range callers {
		callerFn, _ := p.name(target)
		b.WriteString(callerFn)
		b.WriteByte(';')
	}
	b.WriteString(fn)
	p.folded[b.String()]++
	p.fns[fn]++
	p.lines[lineKey{fn, line}]++
	// Re-arm on the interval grid so long instructions (cache misses) do
	// not drift the sampling phase.
	p.nextAt = cycles - cycles%p.Interval + p.Interval
}

// TotalSamples returns the number of samples recorded.
func (p *Profiler) TotalSamples() uint64 { return p.total }

// FoldedStacks renders the samples in Brendan-Gregg folded format
// ("outer;inner count" per line), sorted by stack for determinism.
func (p *Profiler) FoldedStacks() string {
	keys := make([]string, 0, len(p.folded))
	for k := range p.folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, p.folded[k])
	}
	return b.String()
}

// LineSamples is one source line's sample count within a function.
type LineSamples struct {
	Line    int    `json:"line"`
	Samples uint64 `json:"samples"`
}

// FuncSamples aggregates the samples whose leaf frame was one function.
type FuncSamples struct {
	Name    string        `json:"name"`
	Samples uint64        `json:"samples"`
	Lines   []LineSamples `json:"lines,omitempty"`
}

// Top returns the n hottest leaf functions (by samples, name as
// tie-break), each with its per-line breakdown sorted hottest-first.
func (p *Profiler) Top(n int) []FuncSamples {
	out := make([]FuncSamples, 0, len(p.fns))
	for fn, c := range p.fns {
		out = append(out, FuncSamples{Name: fn, Samples: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	for i := range out {
		for k, c := range p.lines {
			if k.fn == out[i].Name {
				out[i].Lines = append(out[i].Lines, LineSamples{Line: k.line, Samples: c})
			}
		}
		ls := out[i].Lines
		sort.Slice(ls, func(a, b int) bool {
			if ls[a].Samples != ls[b].Samples {
				return ls[a].Samples > ls[b].Samples
			}
			return ls[a].Line < ls[b].Line
		})
	}
	return out
}

// RenderTop formats Top(n) as an aligned text table.
func (p *Profiler) RenderTop(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "samples total: %d (interval %d cycles)\n", p.total, p.Interval)
	for _, f := range p.Top(n) {
		pct := 0.0
		if p.total > 0 {
			pct = 100 * float64(f.Samples) / float64(p.total)
		}
		fmt.Fprintf(&b, "%8d  %5.1f%%  %s\n", f.Samples, pct, f.Name)
		for _, l := range f.Lines {
			if l.Line > 0 {
				fmt.Fprintf(&b, "%8s         line %d: %d\n", "", l.Line, l.Samples)
			}
		}
	}
	return b.String()
}
