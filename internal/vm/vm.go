// Package vm implements the VX64 emulator: the execution substrate on which
// both the original compiled functions and the BREW-rewritten functions run.
// It charges a cycle cost per instruction plus memory-hierarchy latency from
// the cache model, standing in for the paper's hardware measurements.
package vm

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Default address-space layout.
const (
	CodeBase  = 0x0001_0000
	CodeSize  = 1 << 20
	JITBase   = 0x0020_0000
	JITSize   = 2 << 20
	DataBase  = 0x0040_0000
	DataSize  = 8 << 20
	HeapBase  = 0x0100_0000
	HeapSize  = 64 << 20
	StackTop  = 0x7000_0000
	StackSize = 8 << 20
)

// Execution errors.
var (
	ErrHalted    = errors.New("vm: halted")
	ErrBreak     = errors.New("vm: breakpoint")
	ErrStepLimit = errors.New("vm: step limit exceeded")
)

// CPU is the architectural register state.
type CPU struct {
	R     [isa.NumRegs]uint64
	F     [isa.NumRegs]float64
	V     [isa.NumVRegs][isa.VecLanes]float64
	Flags isa.Flags
	PC    uint64
}

// Stats accumulates execution counters.
type Stats struct {
	Instructions  uint64
	Cycles        uint64
	Loads         uint64
	Stores        uint64
	Branches      uint64
	TakenBranches uint64
	Calls         uint64
	OpCount       [isa.NumOpcodes]uint64
}

// Sub returns s - t, counter-wise; used to attribute costs to a region of
// execution.
func (s Stats) Sub(t Stats) Stats {
	out := s
	out.Instructions -= t.Instructions
	out.Cycles -= t.Cycles
	out.Loads -= t.Loads
	out.Stores -= t.Stores
	out.Branches -= t.Branches
	out.TakenBranches -= t.TakenBranches
	out.Calls -= t.Calls
	for i := range out.OpCount {
		out.OpCount[i] -= t.OpCount[i]
	}
	return out
}

// RegionCost adds extra access latency for an address range; the PGAS
// substrate uses it to model remote-node (RDMA) memory.
type RegionCost struct {
	Base, End uint64 // [Base, End)
	Extra     int    // cycles added per access
	Count     uint64 // accesses observed (updated by the machine)
}

// Machine bundles CPU, memory, cache and allocators into one executable
// system instance.
type Machine struct {
	CPU   CPU
	Mem   *mem.Memory
	Cache *cache.Hierarchy // nil disables memory-latency modeling
	Stats Stats

	CodeAlloc *mem.Allocator // static program code
	JITAlloc  *mem.Allocator // rewriter output
	DataAlloc *mem.Allocator // globals
	HeapAlloc *mem.Allocator // runtime allocations

	// OnLoad/OnStore observe data memory traffic (profiling substrate).
	OnLoad  func(addr uint64, size int)
	OnStore func(addr uint64, size int)
	// OnStoreValue observes every architectural store together with the
	// value written (low size*8 bits; vector stores report one entry per
	// lane). Unlike OnStore it also fires for stack traffic (PUSH, PUSHF
	// and CALL return-address pushes), so a consumer sees the complete,
	// ordered store journal of a run. The differential oracle uses it to
	// compare original and rewritten executions store by store.
	OnStoreValue func(addr uint64, size int, val uint64)
	// OnCall observes CALL/CALLR targets; the profiler uses it for value
	// profiling of arguments.
	OnCall func(target uint64, cpu *CPU)

	// FuncCost charges extra cycles when the given address is called,
	// modeling external routines (e.g. an RDMA transfer helper).
	FuncCost map[uint64]int

	// RegionCosts model slow memory regions.
	RegionCosts []*RegionCost

	// UserStepLimit overrides DefaultStepLimit for Call/CallFloat when
	// positive.
	UserStepLimit int64

	// Prof, when non-nil, samples the PC and simulated call stack every
	// Prof.Interval cycles (see AttachProfiler). Costs one nil check per
	// instruction when detached; never charges emulated cycles.
	Prof *Profiler

	// Telemetry delta baselines: counters already published to the
	// process-wide registry at the last Call/CallFloat boundary.
	pubStats Stats
	pubCache []cacheLevelStats

	// jitMu serializes JIT allocation and installation, allowing several
	// rewrites to run concurrently (their traces only read memory).
	jitMu sync.Mutex

	// watches are the installed write-watchpoints (see watch.go). nil when
	// none are armed, so the store path pays one length check.
	watches []*Watch

	haltAddr uint64
	icache   map[uint64]isa.Instr
}

// New builds a machine with the default layout and the default cache
// hierarchy.
func New() (*Machine, error) {
	m := &Machine{
		Mem:      &mem.Memory{},
		Cache:    cache.Default(),
		FuncCost: make(map[uint64]int),
		icache:   make(map[uint64]isa.Instr),
	}
	segs := []struct {
		name string
		base uint64
		size uint64
		perm mem.Perm
	}{
		{"code", CodeBase, CodeSize, mem.PermRX | mem.PermWrite},
		{"jit", JITBase, JITSize, mem.PermRWX},
		{"data", DataBase, DataSize, mem.PermRW},
		{"heap", HeapBase, HeapSize, mem.PermRW},
		{"stack", StackTop - StackSize, StackSize, mem.PermRW},
	}
	for _, s := range segs {
		if _, err := m.Mem.Map(s.name, s.base, s.size, s.perm); err != nil {
			return nil, err
		}
	}
	m.CodeAlloc = mem.NewAllocator(CodeBase, CodeSize, 16)
	m.JITAlloc = mem.NewAllocator(JITBase, JITSize, 16)
	m.DataAlloc = mem.NewAllocator(DataBase, DataSize, 16)
	m.HeapAlloc = mem.NewAllocator(HeapBase, HeapSize, 16)

	// Reserve a HALT stub used as the return address of top-level calls.
	stub, err := m.CodeAlloc.Alloc(16)
	if err != nil {
		return nil, err
	}
	b, err := isa.Encode(isa.MakeNone(isa.HALT))
	if err != nil {
		return nil, err
	}
	if err := m.Mem.WriteBytes(stub, b); err != nil {
		return nil, err
	}
	m.haltAddr = stub
	m.CPU.R[isa.SP] = StackTop - 64
	return m, nil
}

// MustNew is New for static setups that cannot fail.
func MustNew() *Machine {
	m, err := New()
	if err != nil {
		panic(err)
	}
	return m
}

// HaltAddr returns the address of the reserved HALT stub.
func (m *Machine) HaltAddr() uint64 { return m.haltAddr }

// LoadCode copies encoded instructions into the static code segment and
// returns their address.
func (m *Machine) LoadCode(code []byte) (uint64, error) {
	addr, err := m.CodeAlloc.Alloc(uint64(len(code)))
	if err != nil {
		return 0, err
	}
	if err := m.Mem.WriteBytes(addr, code); err != nil {
		return 0, err
	}
	m.InvalidateICache()
	return addr, nil
}

// WriteJIT copies rewriter output into the JIT segment at addr (previously
// reserved from JITAlloc) and invalidates the decode cache.
func (m *Machine) WriteJIT(addr uint64, code []byte) error {
	if err := m.Mem.WriteBytes(addr, code); err != nil {
		return err
	}
	m.InvalidateICache()
	return nil
}

// InstallJIT reserves size bytes of executable JIT space, calls gen with
// the final address to produce relocated code, and installs it. The whole
// sequence holds the machine's JIT lock, so multiple rewrites may install
// concurrently (the machine must not be executing meanwhile).
func (m *Machine) InstallJIT(size int, gen func(addr uint64) ([]byte, error)) (uint64, error) {
	m.jitMu.Lock()
	defer m.jitMu.Unlock()
	addr, err := m.JITAlloc.Alloc(uint64(size) + 1)
	if err != nil {
		return 0, err
	}
	// Any failure (or panic) past this point must give the reservation
	// back, or repeated failed rewrites leak the code buffer dry.
	installed := false
	defer func() {
		if !installed {
			_ = m.JITAlloc.Free(addr)
		}
	}()
	code, err := gen(addr)
	if err != nil {
		return 0, err
	}
	if len(code) != size {
		return 0, fmt.Errorf("vm: generated code size changed: %d -> %d", size, len(code))
	}
	if err := m.Mem.WriteBytes(addr, code); err != nil {
		return 0, err
	}
	installed = true
	m.InvalidateICache()
	return addr, nil
}

// InvalidateICache drops all cached decodes; required after any code write.
func (m *Machine) InvalidateICache() {
	if len(m.icache) > 0 {
		m.icache = make(map[uint64]isa.Instr)
	}
}

// fault decorates an execution error with the current PC.
func (m *Machine) fault(err error) error {
	return fmt.Errorf("vm: at pc=0x%x: %w", m.CPU.PC, err)
}

func (m *Machine) fetch() (isa.Instr, error) {
	if ins, ok := m.icache[m.CPU.PC]; ok {
		return ins, nil
	}
	b, err := m.Mem.FetchSlice(m.CPU.PC)
	if err != nil {
		return isa.Instr{}, err
	}
	ins, err := isa.Decode(b, m.CPU.PC)
	if err != nil {
		return isa.Instr{}, err
	}
	m.icache[m.CPU.PC] = ins
	return ins, nil
}

// effAddr computes the effective address of a memory operand.
func (m *Machine) effAddr(mr isa.MemRef) uint64 {
	var a uint64
	if mr.HasBase() {
		a += m.CPU.R[mr.Base]
	}
	if mr.HasIndex() {
		a += m.CPU.R[mr.Index] * uint64(mr.Scale)
	}
	return a + uint64(int64(mr.Disp))
}

func (m *Machine) chargeMem(addr uint64, size int, isStore bool) {
	if isStore {
		m.Stats.Stores++
		if m.OnStore != nil {
			m.OnStore(addr, size)
		}
		if len(m.watches) > 0 {
			m.hitWatches(addr, size)
		}
	} else {
		m.Stats.Loads++
		if m.OnLoad != nil {
			m.OnLoad(addr, size)
		}
	}
	if m.Cache != nil {
		m.Stats.Cycles += uint64(m.Cache.Access(addr, size))
	}
	for _, rc := range m.RegionCosts {
		if addr >= rc.Base && addr < rc.End {
			m.Stats.Cycles += uint64(rc.Extra)
			rc.Count++
		}
	}
}

// noteStore reports one completed store to the journal hook, masking the
// value to the bytes actually written.
func (m *Machine) noteStore(addr uint64, size int, val uint64) {
	if m.OnStoreValue == nil {
		return
	}
	if size < 8 {
		val &= 1<<(8*uint(size)) - 1
	}
	m.OnStoreValue(addr, size, val)
}

func (m *Machine) push(v uint64) error {
	m.CPU.R[isa.SP] -= 8
	addr := m.CPU.R[isa.SP]
	if err := m.Mem.Write64(addr, v); err != nil {
		return err
	}
	m.chargeMem(addr, 8, true)
	m.noteStore(addr, 8, v)
	return nil
}

func (m *Machine) pop() (uint64, error) {
	addr := m.CPU.R[isa.SP]
	v, err := m.Mem.Read64(addr)
	if err != nil {
		return 0, err
	}
	m.chargeMem(addr, 8, false)
	m.CPU.R[isa.SP] += 8
	return v, nil
}

// Step executes one instruction. It returns ErrHalted on HALT and ErrBreak
// on BRK.
func (m *Machine) Step() error {
	ins, err := m.fetch()
	if err != nil {
		return m.fault(err)
	}
	c := &m.CPU
	next := c.PC + uint64(ins.Len)
	m.Stats.Instructions++
	m.Stats.OpCount[ins.Op]++
	m.Stats.Cycles += uint64(ins.Op.Cost())
	if m.Prof != nil && m.Stats.Cycles >= m.Prof.nextAt {
		m.Prof.sample(m.Stats.Cycles, c.PC)
	}

	info := isa.Info(ins.Op)
	switch ins.Op {
	case isa.NOP:

	case isa.HALT:
		return ErrHalted

	case isa.BRK:
		c.PC = next
		return ErrBreak

	case isa.MOV, isa.ADD, isa.SUB, isa.IMUL, isa.IDIV, isa.IREM, isa.AND,
		isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR, isa.CMP, isa.TEST:
		r, fl, writes, aerr := isa.EvalALU(ins.Op, c.R[ins.Dst.Reg], c.R[ins.Src.Reg])
		if aerr != nil {
			return m.fault(aerr)
		}
		if writes {
			c.R[ins.Dst.Reg] = r
		}
		if isa.SetsFlags(ins.Op) {
			c.Flags = fl
		}

	case isa.MOVI, isa.ADDI, isa.SUBI, isa.IMULI, isa.ANDI, isa.ORI,
		isa.XORI, isa.SHLI, isa.SHRI, isa.SARI, isa.CMPI:
		r, fl, writes, aerr := isa.EvalALU(ins.Op, c.R[ins.Dst.Reg], uint64(ins.Src.Imm))
		if aerr != nil {
			return m.fault(aerr)
		}
		if writes {
			c.R[ins.Dst.Reg] = r
		}
		if isa.SetsFlags(ins.Op) {
			c.Flags = fl
		}

	case isa.NEG, isa.NOT:
		r, fl, setsFl := isa.EvalALU1(ins.Op, c.R[ins.Dst.Reg])
		c.R[ins.Dst.Reg] = r
		if setsFl {
			c.Flags = fl
		}

	case isa.LEA:
		c.R[ins.Dst.Reg] = m.effAddr(ins.Src.Mem)

	case isa.LOAD, isa.LOADB:
		addr := m.effAddr(ins.Src.Mem)
		size := 8
		if ins.Op == isa.LOADB {
			size = 1
		}
		v, merr := m.Mem.ReadN(addr, size)
		if merr != nil {
			return m.fault(merr)
		}
		m.chargeMem(addr, size, false)
		c.R[ins.Dst.Reg] = v

	case isa.STORE, isa.STOREB:
		addr := m.effAddr(ins.Dst.Mem)
		size := 8
		if ins.Op == isa.STOREB {
			size = 1
		}
		if merr := m.Mem.WriteN(addr, c.R[ins.Src.Reg], size); merr != nil {
			return m.fault(merr)
		}
		m.chargeMem(addr, size, true)
		m.noteStore(addr, size, c.R[ins.Src.Reg])

	case isa.PUSH:
		if err := m.push(c.R[ins.Dst.Reg]); err != nil {
			return m.fault(err)
		}

	case isa.POP:
		v, perr := m.pop()
		if perr != nil {
			return m.fault(perr)
		}
		c.R[ins.Dst.Reg] = v

	case isa.PUSHF:
		if err := m.push(c.Flags.Bits()); err != nil {
			return m.fault(err)
		}

	case isa.POPF:
		v, perr := m.pop()
		if perr != nil {
			return m.fault(perr)
		}
		c.Flags = isa.FlagsFromBits(v)

	case isa.SETCC:
		if ins.CC.Holds(c.Flags) {
			c.R[ins.Dst.Reg] = 1
		} else {
			c.R[ins.Dst.Reg] = 0
		}

	case isa.JMP:
		m.Stats.Branches++
		m.Stats.TakenBranches++
		c.PC = ins.Target()
		return nil

	case isa.JMPR:
		m.Stats.Branches++
		m.Stats.TakenBranches++
		c.PC = c.R[ins.Dst.Reg]
		return nil

	case isa.JCC:
		m.Stats.Branches++
		if ins.CC.Holds(c.Flags) {
			m.Stats.TakenBranches++
			m.Stats.Cycles++ // taken-branch penalty
			c.PC = ins.Target()
			return nil
		}

	case isa.CALL, isa.CALLR:
		target := ins.Target()
		if ins.Op == isa.CALLR {
			target = c.R[ins.Dst.Reg]
		}
		m.Stats.Calls++
		if m.OnCall != nil {
			m.OnCall(target, c)
		}
		if extra, ok := m.FuncCost[target]; ok {
			m.Stats.Cycles += uint64(extra)
		}
		if err := m.push(next); err != nil {
			return m.fault(err)
		}
		if m.Prof != nil {
			m.Prof.pushCall(target)
		}
		c.PC = target
		return nil

	case isa.RET:
		ra, perr := m.pop()
		if perr != nil {
			return m.fault(perr)
		}
		if m.Prof != nil {
			m.Prof.popCall()
		}
		c.PC = ra
		return nil

	case isa.FMOV, isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FSQRT, isa.FCMP:
		r, fl, writes := isa.EvalFPU(ins.Op, c.F[ins.Dst.Reg], c.F[ins.Src.Reg])
		if writes {
			c.F[ins.Dst.Reg] = r
		}
		if ins.Op == isa.FCMP {
			c.Flags = fl
		}

	case isa.FMOVI:
		c.F[ins.Dst.Reg] = math.Float64frombits(uint64(ins.Src.Imm))

	case isa.FNEG:
		c.F[ins.Dst.Reg] = -c.F[ins.Dst.Reg]

	case isa.FLOAD:
		addr := m.effAddr(ins.Src.Mem)
		v, merr := m.Mem.ReadF64(addr)
		if merr != nil {
			return m.fault(merr)
		}
		m.chargeMem(addr, 8, false)
		c.F[ins.Dst.Reg] = v

	case isa.FSTORE:
		addr := m.effAddr(ins.Dst.Mem)
		if merr := m.Mem.WriteF64(addr, c.F[ins.Src.Reg]); merr != nil {
			return m.fault(merr)
		}
		m.chargeMem(addr, 8, true)
		m.noteStore(addr, 8, math.Float64bits(c.F[ins.Src.Reg]))

	case isa.CVTIF:
		c.F[ins.Dst.Reg] = float64(int64(c.R[ins.Src.Reg]))

	case isa.CVTFI:
		c.R[ins.Dst.Reg] = uint64(int64(c.F[ins.Src.Reg]))

	case isa.FMOVFI:
		c.R[ins.Dst.Reg] = math.Float64bits(c.F[ins.Src.Reg])

	case isa.FMOVIF:
		c.F[ins.Dst.Reg] = math.Float64frombits(c.R[ins.Src.Reg])

	case isa.VLOAD:
		addr := m.effAddr(ins.Src.Mem)
		for i := 0; i < isa.VecLanes; i++ {
			v, merr := m.Mem.ReadF64(addr + uint64(8*i))
			if merr != nil {
				return m.fault(merr)
			}
			c.V[ins.Dst.Reg][i] = v
		}
		m.chargeMem(addr, 8*isa.VecLanes, false)

	case isa.VSTORE:
		addr := m.effAddr(ins.Dst.Mem)
		for i := 0; i < isa.VecLanes; i++ {
			if merr := m.Mem.WriteF64(addr+uint64(8*i), c.V[ins.Src.Reg][i]); merr != nil {
				return m.fault(merr)
			}
			m.noteStore(addr+uint64(8*i), 8, math.Float64bits(c.V[ins.Src.Reg][i]))
		}
		m.chargeMem(addr, 8*isa.VecLanes, true)

	case isa.VADD, isa.VSUB, isa.VMUL:
		for i := 0; i < isa.VecLanes; i++ {
			a, b := c.V[ins.Dst.Reg][i], c.V[ins.Src.Reg][i]
			switch ins.Op {
			case isa.VADD:
				c.V[ins.Dst.Reg][i] = a + b
			case isa.VSUB:
				c.V[ins.Dst.Reg][i] = a - b
			case isa.VMUL:
				c.V[ins.Dst.Reg][i] = a * b
			}
		}

	case isa.VBCAST:
		for i := 0; i < isa.VecLanes; i++ {
			c.V[ins.Dst.Reg][i] = c.F[ins.Src.Reg]
		}

	case isa.VHADD:
		s := 0.0
		for i := 0; i < isa.VecLanes; i++ {
			s += c.V[ins.Src.Reg][i]
		}
		c.F[ins.Dst.Reg] = s

	default:
		return m.fault(fmt.Errorf("unimplemented opcode %s (%v)", info.Name, ins))
	}

	c.PC = next
	return nil
}

// Run executes until HALT, BRK, a fault, or maxSteps instructions
// (maxSteps <= 0 means no limit). HALT returns nil.
func (m *Machine) Run(maxSteps int64) error {
	for n := int64(0); maxSteps <= 0 || n < maxSteps; n++ {
		switch err := m.Step(); {
		case err == nil:
		case errors.Is(err, ErrHalted):
			return nil
		default:
			return err
		}
	}
	return ErrStepLimit
}
