package vm_test

import (
	"reflect"
	"testing"

	"repro/internal/vm"
)

// TestStatsSubAllFields fills every counter field (the OpCount array
// included) through reflection and checks Sub subtracts each one, so a
// newly added Stats field that Sub forgets fails here instead of silently
// corrupting region deltas.
func TestStatsSubAllFields(t *testing.T) {
	fill := func(s *vm.Stats, base uint64) {
		v := reflect.ValueOf(s).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.Uint64:
				f.SetUint(base + uint64(i))
			case reflect.Array:
				for j := 0; j < f.Len(); j++ {
					f.Index(j).SetUint(base + uint64(i) + 3*uint64(j))
				}
			default:
				t.Fatalf("unhandled Stats field kind %v; extend this test and Stats.Sub", f.Kind())
			}
		}
	}
	var a, b vm.Stats
	fill(&a, 1000)
	fill(&b, 17)
	const want = 1000 - 17 // per-field difference is constant by construction

	v := reflect.ValueOf(a.Sub(b))
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := v.Type().Field(i).Name
		switch f.Kind() {
		case reflect.Uint64:
			if f.Uint() != want {
				t.Errorf("Sub missed field %s: got %d, want %d", name, f.Uint(), want)
			}
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				if f.Index(j).Uint() != want {
					t.Errorf("Sub missed %s[%d]: got %d, want %d", name, j, f.Index(j).Uint(), want)
					break
				}
			}
		}
	}
}
