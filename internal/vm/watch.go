package vm

// Watch is one write-watchpoint: OnHit fires for every architectural store
// whose byte range overlaps [Start, End), including stores that merely
// straddle a boundary of the range. The specialization manager arms
// watchpoints over frozen (declared-known) memory so a violated assumption
// deoptimizes the stale specialized code before it can be called again.
//
// OnHit runs synchronously inside the store path, before the emulated
// instruction completes. It may patch JIT code and remove watchpoints
// (including its own), but must not execute machine code on this machine.
type Watch struct {
	Start, End uint64
	OnHit      func(w *Watch, addr uint64, size int)

	// Tag is free for the owner (e.g. the specmgr entry the watch guards).
	Tag any
}

// AddWatch registers a write-watchpoint over [start, end) and returns its
// handle. Watch mutations require the same external synchronization as any
// other machine mutation: they must not race machine execution, and
// concurrent managers must serialize among themselves.
func (m *Machine) AddWatch(start, end uint64, onHit func(w *Watch, addr uint64, size int)) *Watch {
	w := &Watch{Start: start, End: end, OnHit: onHit}
	// Copy-on-write: hitWatches iterates a snapshot, so a handler removing
	// or adding watches mid-iteration never mutates the slice under it.
	ws := make([]*Watch, 0, len(m.watches)+1)
	ws = append(ws, m.watches...)
	m.watches = append(ws, w)
	return w
}

// RemoveWatch deregisters a watchpoint. Removing a watch that is not
// installed is a no-op.
func (m *Machine) RemoveWatch(w *Watch) {
	if w == nil || len(m.watches) == 0 {
		return
	}
	ws := make([]*Watch, 0, len(m.watches))
	for _, x := range m.watches {
		if x != w {
			ws = append(ws, x)
		}
	}
	if len(ws) == 0 {
		ws = nil
	}
	m.watches = ws
}

// Watches returns the installed watchpoints (shared slice; do not mutate).
func (m *Machine) Watches() []*Watch { return m.watches }

// hitWatches dispatches one store to every overlapping watchpoint. The
// overlap test is [addr, addr+size) ∩ [Start, End) ≠ ∅, so a store
// straddling a region edge still triggers the watch.
func (m *Machine) hitWatches(addr uint64, size int) {
	end := addr + uint64(size)
	for _, w := range m.watches {
		if addr < w.End && end > w.Start && w.OnHit != nil {
			w.OnHit(w, addr, size)
		}
	}
}

// FreeJIT releases a JIT allocation (a rewritten body, dispatcher or entry
// stub) under the machine's JIT lock, so releases may race concurrent
// InstallJIT calls (the specialization manager evicts while rewrites run).
func (m *Machine) FreeJIT(addr uint64) error {
	m.jitMu.Lock()
	defer m.jitMu.Unlock()
	return m.JITAlloc.Free(addr)
}

// JITFreeBytes returns the free code-buffer space under the JIT lock, so
// concurrent installs and releases cannot tear the reading (the direct
// JITAlloc accessors are only safe on a quiescent machine). Leak checks
// compare it against a baseline taken before any specialization.
func (m *Machine) JITFreeBytes() uint64 {
	m.jitMu.Lock()
	defer m.jitMu.Unlock()
	return m.JITAlloc.FreeBytes()
}

// JITLiveBytes is JITFreeBytes for the currently allocated total.
func (m *Machine) JITLiveBytes() uint64 {
	m.jitMu.Lock()
	defer m.jitMu.Unlock()
	return m.JITAlloc.LiveBytes()
}
