package vm

import "repro/internal/telemetry"

// Execution counters published to the process-wide telemetry registry.
// Updates happen only at Call/CallFloat boundaries (as deltas against the
// last publication), never per instruction, so the emulator hot path is
// untouched whether telemetry is on or off.
var (
	mCycles   = telemetry.Default.Counter("vm.cycles")
	mInstrs   = telemetry.Default.Counter("vm.instructions")
	mLoads    = telemetry.Default.Counter("vm.loads")
	mStores   = telemetry.Default.Counter("vm.stores")
	mBranches = telemetry.Default.Counter("vm.branches")
	mTaken    = telemetry.Default.Counter("vm.taken_branches")
	mCalls    = telemetry.Default.Counter("vm.calls")
)

// PublishTelemetry pushes the machine's counter growth since the last
// publication into the telemetry registry: vm.* execution counters and
// cache.<level>.{hits,misses,evictions} per cache level. It is called
// automatically after every top-level Call/CallFloat and is safe (and
// cheap — one atomic load) to call with telemetry disabled.
func (m *Machine) PublishTelemetry() {
	if !telemetry.Enabled() {
		return
	}
	d := m.Stats.Sub(m.pubStats)
	m.pubStats = m.Stats
	mCycles.Add(d.Cycles)
	mInstrs.Add(d.Instructions)
	mLoads.Add(d.Loads)
	mStores.Add(d.Stores)
	mBranches.Add(d.Branches)
	mTaken.Add(d.TakenBranches)
	mCalls.Add(d.Calls)
	if m.Cache == nil {
		return
	}
	cur := m.Cache.Stats()
	for i, lv := range cur {
		prev := cacheStatsAt(m.pubCache, i)
		telemetry.Default.Counter("cache." + lv.Name + ".hits").Add(lv.Hits - prev.Hits)
		telemetry.Default.Counter("cache." + lv.Name + ".misses").Add(lv.Misses - prev.Misses)
		telemetry.Default.Counter("cache." + lv.Name + ".evictions").Add(lv.Evictions - prev.Evictions)
	}
	if cap(m.pubCache) < len(cur) {
		m.pubCache = make([]cacheLevelStats, len(cur))
	}
	m.pubCache = m.pubCache[:len(cur)]
	for i, lv := range cur {
		m.pubCache[i] = cacheLevelStats{Hits: lv.Hits, Misses: lv.Misses, Evictions: lv.Evictions}
	}
}

type cacheLevelStats struct {
	Hits, Misses, Evictions uint64
}

func cacheStatsAt(s []cacheLevelStats, i int) cacheLevelStats {
	if i < len(s) {
		return s[i]
	}
	return cacheLevelStats{}
}
