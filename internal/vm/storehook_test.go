package vm_test

import (
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/vm"
)

type rec struct {
	addr uint64
	size int
	val  uint64
}

// TestOnStoreValueJournal checks the store-observation hook the
// differential oracle (internal/oracle) builds its journal on: every
// architectural store — plain, byte-sized, float, vector lanes, and the
// implicit pushes of PUSH and CALL — must be reported exactly once with the
// stored value masked to its size.
func TestOnStoreValueJournal(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
f:
    movi  r2, buf
    movi  r1, 0x1122334455667788
    store [r2], r1
    storeb [r2+8], r1
    fmovi f1, 2.5
    fstore [r2+16], f1
    vload v0, [r2]
    vstore [r2+16], v0
    push  r1
    pop   r1
    call  g
    movi  r0, 0
    ret
g:
    ret
.data
buf:
    .quad 0, 0, 0, 0, 0, 0
`)
	if err != nil {
		t.Fatal(err)
	}
	buf := im.MustEntry("buf")
	var got []rec
	m.OnStoreValue = func(addr uint64, size int, val uint64) {
		got = append(got, rec{addr, size, val})
	}
	if _, err := m.Call(im.MustEntry("f")); err != nil {
		t.Fatal(err)
	}
	m.OnStoreValue = nil

	// The Call itself pushes the HALT return address first.
	if len(got) == 0 || got[0].size != 8 {
		t.Fatalf("missing initial return-address push: %v", got)
	}
	sp0 := got[0].addr

	v25 := math.Float64bits(2.5)
	lane0 := uint64(0x1122334455667788)
	lane1 := uint64(0x88) // storeb result read back by vload
	want := []rec{
		{sp0, 8, 0}, // call-ABI push of HALT addr (value checked below)
		{buf, 8, 0x1122334455667788},
		{buf + 8, 1, 0x88},   // byte store masks to low 8 bits
		{buf + 16, 8, v25},   // float store reports raw bits
		{buf + 16, 8, lane0}, // vstore lane 0 (= buf[0])
		{buf + 24, 8, lane1}, // vstore lane 1 (= buf[1], the storeb byte)
		{buf + 32, 8, v25},   // vstore lane 2 (= buf[2], the fstore bits)
		{buf + 40, 8, 0},     // vstore lane 3 (= buf[3], untouched)
		{sp0 - 8, 8, lane0},  // push r1
		{sp0 - 8, 8, 0},      // call g pushes the return address
	}
	if len(got) != len(want) {
		t.Fatalf("journal length %d, want %d: %v", len(got), len(want), got)
	}
	for i, w := range want {
		g := got[i]
		if g.addr != w.addr || g.size != w.size {
			t.Errorf("store #%d: got [0x%x]%d, want [0x%x]%d", i, g.addr, g.size, w.addr, w.size)
		}
		// Entries 0 and 9 store code addresses (HALT stub, return address);
		// only shape is checked for those.
		if i != 0 && i != 9 && g.val != w.val {
			t.Errorf("store #%d: value 0x%x, want 0x%x", i, g.val, w.val)
		}
	}
	if got[9].val == 0 {
		t.Errorf("call push should record the return address, got 0")
	}
}
