package vm_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/vm"
)

func loadRun(t *testing.T, src, entry string, args ...uint64) (uint64, *vm.Machine) {
	t.Helper()
	m := vm.MustNew()
	im, err := asm.Load(m, src)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := m.Call(im.MustEntry(entry), args...)
	if err != nil {
		t.Fatal(err)
	}
	return ret, m
}

func TestSumLoop(t *testing.T) {
	// sum of 1..n passed in r1
	ret, _ := loadRun(t, `
sum:
    movi r0, 0
loop:
    add  r0, r1
    subi r1, 1
    jne loop
    ret
`, "sum", 10)
	if ret != 55 {
		t.Errorf("sum = %d, want 55", ret)
	}
}

func TestCallAndStack(t *testing.T) {
	ret, m := loadRun(t, `
main:
    push r10
    movi r10, 40
    mov  r1, r10
    movi r2, 2
    call addfn
    pop  r10
    ret
addfn:
    mov  r0, r1
    add  r0, r2
    ret
`, "main")
	if ret != 42 {
		t.Errorf("ret = %d, want 42", ret)
	}
	// Top-level invocation enters without a CALL instruction, so only the
	// inner call to addfn is counted.
	if m.Stats.Calls != 1 {
		t.Errorf("calls = %d, want 1", m.Stats.Calls)
	}
}

func TestRecursiveFib(t *testing.T) {
	src := `
fib:
    cmpi r1, 2
    jlt  base
    push r10
    push r11
    mov  r10, r1
    subi r1, 1
    call fib
    mov  r11, r0
    mov  r1, r10
    subi r1, 2
    call fib
    add  r0, r11
    pop  r11
    pop  r10
    ret
base:
    mov r0, r1
    ret
`
	want := []uint64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	m := vm.MustNew()
	im, err := asm.Load(m, src)
	if err != nil {
		t.Fatal(err)
	}
	for n, w := range want {
		got, err := m.Call(im.MustEntry("fib"), uint64(n))
		if err != nil {
			t.Fatalf("fib(%d): %v", n, err)
		}
		if got != w {
			t.Errorf("fib(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestMemoryOps(t *testing.T) {
	ret, _ := loadRun(t, `
main:
    movi r1, tbl
    load r2, [r1]         ; 7
    load r3, [r1+8]       ; 9
    movi r4, 1
    load r5, [r1+r4*8]    ; 9
    add  r2, r3
    add  r2, r5
    storeb [r1], r2       ; write low byte (25)
    loadb r0, [r1]
    ret
.data
tbl: .quad 7, 9
`, "main")
	if ret != 25 {
		t.Errorf("ret = %d, want 25", ret)
	}
}

func TestLEA(t *testing.T) {
	ret, _ := loadRun(t, `
main:
    movi r1, 100
    movi r2, 3
    lea  r0, [r1+r2*8+4]
    ret
`, "main")
	if ret != 128 {
		t.Errorf("lea = %d, want 128", ret)
	}
}

func TestFloatOps(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
dot:
    ; r1 = a, r2 = b, r3 = n
    fmovi f0, 0.0
loop:
    fload f1, [r1]
    fload f2, [r2]
    fmul  f1, f2
    fadd  f0, f1
    addi  r1, 8
    addi  r2, 8
    subi  r3, 1
    jne   loop
    ret
.data
a: .double 1.0, 2.0, 3.0
b: .double 4.0, 5.0, 6.0
`)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := im.Entry("a")
	b, _ := im.Entry("b")
	got, err := m.CallFloat(im.MustEntry("dot"), []uint64{a, b, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Errorf("dot = %g, want 32", got)
	}
}

func TestCvtAndFpMisc(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
f:
    cvtif f1, r1     ; f1 = (double) r1
    fmovi f2, 2.0
    fdiv  f1, f2
    fsqrt f1, f1
    fneg  f1
    cvtfi r0, f1
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(im.MustEntry("f"), 32) // sqrt(16) = 4; negated -4
	if err != nil {
		t.Fatal(err)
	}
	if int64(got) != -4 {
		t.Errorf("got %d, want -4", int64(got))
	}
}

func TestVectorOps(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
vsum:
    vload  v0, [r1]
    vload  v1, [r2]
    vmul   v0, v1
    vhadd  f0, v0
    ret
.data
x: .double 1.0, 2.0, 3.0, 4.0
y: .double 10.0, 20.0, 30.0, 40.0
`)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := im.Entry("x")
	y, _ := im.Entry("y")
	got, err := m.CallFloat(im.MustEntry("vsum"), []uint64{x, y}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10+40+90+160 {
		t.Errorf("vsum = %g, want 300", got)
	}
}

func TestVBcast(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
f:
    fmovi f1, 2.5
    vbcast v0, f1
    vhadd  f0, v0
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.CallFloat(im.MustEntry("f"), nil, nil)
	if err != nil || got != 10 {
		t.Errorf("bcast sum = %g, %v; want 10", got, err)
	}
}

func TestSetccAndConditions(t *testing.T) {
	// r0 = (r1 < r2) signed
	src := `
lt:
    cmp r1, r2
    setlt r0
    ret
`
	m := vm.MustNew()
	im, err := asm.Load(m, src)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b uint64
		want uint64
	}{
		{1, 2, 1}, {2, 1, 0}, {2, 2, 0},
		{^uint64(4), 3, 1}, {3, ^uint64(4), 0}, // -5 vs 3 signed
	}
	for _, c := range cases {
		got, err := m.Call(im.MustEntry("lt"), c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("lt(%d,%d) = %d, want %d", int64(c.a), int64(c.b), got, c.want)
		}
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, "f:\n idiv r1, r2\n ret\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(im.MustEntry("f"), 10, 0); !errors.Is(err, isa.ErrDivideByZero) {
		t.Errorf("div by zero: %v", err)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, "f:\n movi r1, 0x900000000\n load r0, [r1]\n ret\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(im.MustEntry("f")); err == nil {
		t.Error("unmapped access did not fault")
	}
}

func TestStepLimit(t *testing.T) {
	m := vm.MustNew()
	m.UserStepLimit = 100
	im, err := asm.Load(m, "f:\n jmp f\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(im.MustEntry("f")); !errors.Is(err, vm.ErrStepLimit) {
		t.Errorf("step limit: %v", err)
	}
}

func TestBreakpoint(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, "f:\n movi r0, 7\n brk\n ret\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Call(im.MustEntry("f"))
	if !errors.Is(err, vm.ErrBreak) {
		t.Fatalf("want break, got %v", err)
	}
	if m.CPU.R[0] != 7 {
		t.Errorf("r0 = %d", m.CPU.R[0])
	}
}

func TestStatsAccounting(t *testing.T) {
	_, m := loadRun(t, `
main:
    movi r1, 4
loop:
    subi r1, 1
    jne  loop
    load r2, [d]
    store [d], r2
    ret
.data
d: .quad 1
`, "main")
	st := m.Stats
	if st.Instructions == 0 || st.Cycles < st.Instructions {
		t.Errorf("instr=%d cycles=%d", st.Instructions, st.Cycles)
	}
	// 1 load + 1 store of data, plus stack traffic from Call.
	if st.Loads < 2 || st.Stores < 2 {
		t.Errorf("loads=%d stores=%d", st.Loads, st.Stores)
	}
	if st.Branches != 4 || st.TakenBranches != 3 {
		t.Errorf("branches=%d taken=%d", st.Branches, st.TakenBranches)
	}
	if st.OpCount[isa.SUBI] != 4 {
		t.Errorf("subi count = %d", st.OpCount[isa.SUBI])
	}
	diff := st.Sub(vm.Stats{Instructions: 1})
	if diff.Instructions != st.Instructions-1 {
		t.Error("Stats.Sub broken")
	}
}

func TestFuncCostAndRegionCost(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
main:
    call helper
    load r1, [slow]
    ret
helper:
    ret
.data
slow: .quad 0
`)
	if err != nil {
		t.Fatal(err)
	}
	slow, _ := im.Entry("slow")
	m.FuncCost[im.MustEntry("helper")] = 1000
	rc := &vm.RegionCost{Base: slow, End: slow + 8, Extra: 5000}
	m.RegionCosts = append(m.RegionCosts, rc)
	before := m.Stats.Cycles
	if _, err := m.Call(im.MustEntry("main")); err != nil {
		t.Fatal(err)
	}
	cost := m.Stats.Cycles - before
	if cost < 6000 {
		t.Errorf("cycles = %d, want >= 6000 (func+region cost)", cost)
	}
	if rc.Count != 1 {
		t.Errorf("region count = %d", rc.Count)
	}
}

func TestOnCallAndMemHooks(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
main:
    movi r1, 42
    call target
    load r2, [d]
    store [d], r2
    ret
target:
    ret
.data
d: .quad 0
`)
	if err != nil {
		t.Fatal(err)
	}
	var calls []uint64
	var arg1 uint64
	m.OnCall = func(t uint64, c *vm.CPU) { calls = append(calls, t); arg1 = c.R[1] }
	loads, stores := 0, 0
	m.OnLoad = func(addr uint64, size int) { loads++ }
	m.OnStore = func(addr uint64, size int) { stores++ }
	if _, err := m.Call(im.MustEntry("main")); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0] != im.MustEntry("target") || arg1 != 42 {
		t.Errorf("call hook: %v arg1=%d", calls, arg1)
	}
	if loads < 1 || stores < 1 {
		t.Errorf("mem hooks: loads=%d stores=%d", loads, stores)
	}
}

func TestICacheInvalidation(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, "f:\n movi r0, 1\n ret\n")
	if err != nil {
		t.Fatal(err)
	}
	f := im.MustEntry("f")
	if r, _ := m.Call(f); r != 1 {
		t.Fatalf("first call = %d", r)
	}
	// Overwrite with movi r0, 9; the icache must not serve the old decode.
	p, err := asm.AssembleAt("f:\n movi r0, 9\n ret\n", f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.WriteBytes(f, p.Code); err != nil {
		t.Fatal(err)
	}
	m.InvalidateICache()
	if r, _ := m.Call(f); r != 9 {
		t.Errorf("after rewrite call = %d, want 9", r)
	}
}

func TestCallTooManyArgs(t *testing.T) {
	m := vm.MustNew()
	if _, err := m.Call(0x1000, 1, 2, 3, 4, 5, 6, 7); !errors.Is(err, vm.ErrTooManyArgs) {
		t.Errorf("too many args: %v", err)
	}
}

func TestWriteReadSlices(t *testing.T) {
	m := vm.MustNew()
	a, err := m.AllocHeap(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteF64Slice(a, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadF64Slice(a, 3)
	if err != nil || got[0] != 1 || got[2] != 3 {
		t.Errorf("slice roundtrip: %v %v", got, err)
	}
	if err := m.WriteI64Slice(a, []int64{-1, 5}); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Mem.Read64(a)
	if int64(v) != -1 {
		t.Errorf("i64 write: %d", int64(v))
	}
}

// Property: the emulator's ALU matches Go's semantics for random inputs on
// a representative program (a+b*c - (a>>3)).
func TestALUMatchesGoProperty(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
f:
    mov  r4, r2
    imul r4, r3
    add  r4, r1
    mov  r5, r1
    sari r5, 3
    sub  r4, r5
    mov  r0, r4
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	fn := im.MustEntry("f")
	f := func(a, b, c int64) bool {
		got, err := m.Call(fn, uint64(a), uint64(b), uint64(c))
		if err != nil {
			return false
		}
		want := a + b*c - (a >> 3)
		return int64(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: push/pop sequences preserve values (stack discipline).
func TestStackProperty(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
f:
    push r1
    push r2
    push r3
    pop  r4
    pop  r5
    pop  r6
    mov  r0, r6      ; r6 = original r1
    imuli r0, 1
    sub  r0, r1      ; 0 if preserved
    mov  r7, r5
    sub  r7, r2
    add  r0, r7
    mov  r7, r4
    sub  r7, r3
    add  r0, r7
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	fn := im.MustEntry("f")
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a, b, c := r.Uint64(), r.Uint64(), r.Uint64()
		got, err := m.Call(fn, a, b, c)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Fatalf("stack not preserved for %d %d %d", a, b, c)
		}
	}
}

func TestPushfPopfSemantics(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
f:
    cmp  r1, r2     ; set flags from comparison
    pushf
    movi r3, 1      ; clobber flags
    cmpi r3, 99
    popf            ; restore comparison flags
    setlt r0
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	fn := im.MustEntry("f")
	cases := [][3]uint64{{1, 2, 1}, {5, 2, 0}, {3, 3, 0}}
	for _, c := range cases {
		got, err := m.Call(fn, c[0], c[1])
		if err != nil || got != c[2] {
			t.Errorf("f(%d,%d) = %d, %v; want %d", c[0], c[1], got, err, c[2])
		}
	}
}

func TestFloatBitMoves(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
f:
    fmovi f1, 1.5
    fmovfi r0, f1     ; raw bits of 1.5
    fmovif f2, r0     ; back to float
    fmov  f0, f2
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.CallFloat(im.MustEntry("f"), nil, nil)
	if err != nil || got != 1.5 {
		t.Errorf("roundtrip = %g, %v", got, err)
	}
	if m.CPU.R[0] != 0x3FF8000000000000 {
		t.Errorf("bits = 0x%x", m.CPU.R[0])
	}
}

func TestIndirectJumpAndCall(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
f:
    movi r3, target
    callr r3
    movi r4, done
    jmpr r4
    movi r0, 0        ; skipped
done:
    addi r0, 1
    ret
target:
    movi r0, 40
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(im.MustEntry("f"))
	if err != nil || got != 41 {
		t.Errorf("f() = %d, %v; want 41", got, err)
	}
}

func TestExecuteNonExecutableFaults(t *testing.T) {
	m := vm.MustNew()
	im, err := asm.Load(m, `
f:
    movi r1, d
    jmpr r1
.data
d: .quad 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(im.MustEntry("f")); err == nil {
		t.Error("jumping into .data did not fault")
	}
}
