package vm_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

func snapshotValue(t *testing.T, s telemetry.Snapshot, name string) uint64 {
	t.Helper()
	for _, m := range s {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %s not in snapshot", name)
	return 0
}

// TestPublishTelemetry runs a small program with telemetry enabled and
// checks the published VM counters match Stats exactly and the per-level
// cache counters match the hierarchy's own statistics.
func TestPublishTelemetry(t *testing.T) {
	telemetry.Default.Reset()
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)

	m := vm.MustNew()
	im, err := asm.Load(m, `
main:
    movi r1, 0
    movi r2, 10
loop:
    load r3, [d]
    addi r3, 1
    store [d], r3
    addi r1, 1
    cmp r1, r2
    jlt loop
    call helper
    load r0, [d]
    ret
helper:
    ret
.data
d: .quad 0
`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(im.MustEntry("main"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("result = %d, want 10", got)
	}

	snap := telemetry.Default.Snapshot()
	st := m.Stats
	for name, want := range map[string]uint64{
		"vm.cycles":         st.Cycles,
		"vm.instructions":   st.Instructions,
		"vm.loads":          st.Loads,
		"vm.stores":         st.Stores,
		"vm.branches":       st.Branches,
		"vm.taken_branches": st.TakenBranches,
		"vm.calls":          st.Calls,
	} {
		if v := snapshotValue(t, snap, name); v != want {
			t.Errorf("%s = %d, want %d", name, v, want)
		}
	}
	for _, lv := range m.Cache.Stats() {
		if v := snapshotValue(t, snap, "cache."+lv.Name+".hits"); v != lv.Hits {
			t.Errorf("cache.%s.hits = %d, want %d", lv.Name, v, lv.Hits)
		}
		if v := snapshotValue(t, snap, "cache."+lv.Name+".misses"); v != lv.Misses {
			t.Errorf("cache.%s.misses = %d, want %d", lv.Name, v, lv.Misses)
		}
		if v := snapshotValue(t, snap, "cache."+lv.Name+".evictions"); v != lv.Evictions {
			t.Errorf("cache.%s.evictions = %d, want %d", lv.Name, v, lv.Evictions)
		}
	}

	// A second call publishes only the delta, keeping counters == Stats.
	if _, err := m.Call(im.MustEntry("main")); err != nil {
		t.Fatal(err)
	}
	snap = telemetry.Default.Snapshot()
	if v := snapshotValue(t, snap, "vm.instructions"); v != m.Stats.Instructions {
		t.Errorf("after second call vm.instructions = %d, want %d", v, m.Stats.Instructions)
	}
}
