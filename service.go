package repro

import (
	"repro/internal/brewsvc"
	"time"
)

// Re-exported specialization-service types: the long-lived concurrent
// front end over Do — sharded worker pools, request coalescing, a
// lock-free specialization cache, hotness-driven tier promotion, and
// admission control. See internal/brewsvc for the full API.
type (
	// Service is the sharded specialization service.
	Service = brewsvc.Service
	// ServiceRequest is one service submission (brewsvc.Request).
	ServiceRequest = brewsvc.Request
	// ServiceOutcome is the terminal result of a submission
	// (brewsvc.Outcome).
	ServiceOutcome = brewsvc.Outcome
	// Ticket is the asynchronous handle returned by Submit/SubmitBatch.
	Ticket = brewsvc.Ticket
	// PromotionBatch is the awaitable handle returned by PumpPromotions.
	PromotionBatch = brewsvc.PromotionBatch
	// Admission configures per-priority SLOs and overload decisions.
	Admission = brewsvc.Admission
	// ServiceOption is a functional option for OpenService.
	ServiceOption = brewsvc.Option
	// ServiceStats are the service's cumulative counters.
	ServiceStats = brewsvc.Stats
	// Priority is a request's admission class.
	Priority = brewsvc.Priority
)

// Request priorities (ServiceRequest.Priority).
const (
	PriorityLow    = brewsvc.PriorityLow
	PriorityNormal = brewsvc.PriorityNormal
	PriorityHigh   = brewsvc.PriorityHigh
)

// Service degradation sentinels.
var (
	ErrQueueFull     = brewsvc.ErrQueueFull
	ErrServiceClosed = brewsvc.ErrClosed
	ErrOverload      = brewsvc.ErrOverload
	ShedDegrade      = brewsvc.ShedDegrade
	ShedEvictLower   = brewsvc.ShedEvictLower
)

// OpenService starts a specialization service on the system's machine.
// With no options it runs a single shard with library-default worker,
// queue and cache geometry; compose With* options to scale out:
//
//	svc := repro.OpenService(sys,
//	    repro.WithServiceShards(8),
//	    repro.WithServiceWorkers(4))
//	defer svc.Close()
func OpenService(s *System, opts ...ServiceOption) *Service {
	return brewsvc.Open(s.VM, opts...)
}

// WithServiceShards sets the number of independent service shards.
func WithServiceShards(n int) ServiceOption { return brewsvc.WithShards(n) }

// WithServiceWorkers sets the rewrite worker count per shard.
func WithServiceWorkers(n int) ServiceOption { return brewsvc.WithWorkers(n) }

// WithServiceQueueCap bounds each shard's pending-request queue.
func WithServiceQueueCap(n int) ServiceOption { return brewsvc.WithQueueCap(n) }

// WithServiceCache sets the specialization cache geometry.
func WithServiceCache(shards, perShard int) ServiceOption {
	return brewsvc.WithCache(shards, perShard)
}

// WithServicePromotion enables hotness-driven tier promotion after n
// calls+samples.
func WithServicePromotion(after int) ServiceOption { return brewsvc.WithPromotion(after) }

// WithServiceAdmission installs per-priority admission control.
func WithServiceAdmission(a Admission) ServiceOption { return brewsvc.WithAdmission(a) }

// ServiceSLO is a convenience constructor for a uniform-deadline
// admission policy: every priority class gets the same SLO and the
// default shed-degrade overload decision.
func ServiceSLO(d time.Duration) Admission {
	return Admission{SLO: [3]time.Duration{d, d, d}}
}
