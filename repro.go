// Package repro is BREW-Go: a from-scratch reproduction of
//
//	Weidendorfer, Breitbart. "The Case for Binary Rewriting at Runtime for
//	Efficient Implementation of High-Level Programming Models in HPC."
//	IPDPS Workshops (HIPS) 2016.
//
// It provides programmer-controlled binary rewriting at runtime: given a
// compiled function and a configuration declaring which parameters and
// memory regions are fixed, Rewrite produces a specialized drop-in
// replacement — partial evaluation, inlining and controlled loop unrolling
// over machine code.
//
// The machine code is VX64, a simulated 64-bit ISA (see DESIGN.md for why
// and how the simulation substitutes for the paper's x86 hardware). A
// System bundles everything needed end to end:
//
//	sys, _ := repro.NewSystem()
//	prog, _ := sys.CompileC(`
//	    double scale(double *v, long n, double f) { ... }`, nil)
//	fn, _ := prog.FuncAddr("scale")
//
//	cfg := repro.NewConfig().SetParam(2, repro.ParamKnown)
//	res, _ := sys.Do(&repro.Request{Config: cfg, Fn: fn, Args: []uint64{0, 128}})
//	out, _ := sys.CallFloat(res.Addr, []uint64{vec, 128}, nil)
package repro

import (
	"repro/internal/asm"
	"repro/internal/brew"
	"repro/internal/isa"
	"repro/internal/minc"
	"repro/internal/vm"
)

// Re-exported rewriter types: the stable public surface of the core
// library.
type (
	// Config is the rewriter configuration (the paper's rConf).
	Config = brew.Config
	// FuncOpts are per-function tracing options.
	FuncOpts = brew.FuncOpts
	// ParamClass declares a parameter assumption.
	ParamClass = brew.ParamClass
	// Request is one specialization request: the input of Do.
	Request = brew.Request
	// Outcome is the unified result of Do: specialized, guarded, or
	// degraded.
	Outcome = brew.Outcome
	// Mode selects Do's failure semantics.
	Mode = brew.Mode
	// Effort selects the rewrite tier: full pipeline or quick tier-0.
	Effort = brew.Effort
	// Result describes a successful rewrite.
	Result = brew.Result
	// GuardedResult describes a profile-guarded specialization.
	GuardedResult = brew.GuardedResult
	// ParamGuard is one parameter equality guard.
	ParamGuard = brew.ParamGuard
	// Program is a compiled-and-linked C translation unit.
	Program = minc.Linked
	// Machine is the underlying VX64 system instance.
	Machine = vm.Machine
	// Stats are the machine's execution counters.
	Stats = vm.Stats
)

// Do failure semantics (see brew.Mode).
const (
	// ModeSpecialize fails the request on any pipeline error.
	ModeSpecialize = brew.ModeSpecialize
	// ModeDegrade converts every pipeline error into a degraded Outcome
	// addressing the original function.
	ModeDegrade = brew.ModeDegrade
)

// Rewrite effort tiers (Config.Effort).
const (
	// EffortFull (the zero value) runs the complete pipeline: trace,
	// optimization pass stack, optional vectorization.
	EffortFull = brew.EffortFull
	// EffortQuick is tier-0: trace plus constant folding only, for
	// low-latency installation; pair with a later EffortFull re-rewrite
	// (internal/brewsvc promotes hot entries automatically).
	EffortQuick = brew.EffortQuick
)

// Parameter classes (paper: BREW_UNKNOWN, BREW_KNOWN, BREW_PTR_TOKNOWN).
const (
	ParamUnknown    = brew.ParamUnknown
	ParamKnown      = brew.ParamKnown
	ParamPtrToKnown = brew.ParamPtrToKnown
)

// Rewriting failures; all of them leave the original function usable.
var (
	ErrIndirectJump   = brew.ErrIndirectJump
	ErrTraceTooLong   = brew.ErrTraceTooLong
	ErrTooManyBlocks  = brew.ErrTooManyBlocks
	ErrInlineDepth    = brew.ErrInlineDepth
	ErrCodeBufferFull = brew.ErrCodeBufferFull
	ErrBadCode        = brew.ErrBadCode
	ErrUnsupported    = brew.ErrUnsupported
	ErrBadConfig      = brew.ErrBadConfig
	// ErrDegraded wraps the cause of every ModeDegrade fallback.
	ErrDegraded = brew.ErrDegraded
)

// NewConfig returns a rewriter configuration with library defaults
// (brew_initConf).
func NewConfig() *Config { return brew.NewConfig() }

// System is one simulated machine with compiler, assembler and rewriter
// attached.
type System struct {
	// VM is the underlying machine: memory, cache model, statistics.
	VM *Machine
}

// NewSystem creates a machine with the default address-space layout and
// the default (i7-3740QM-like) cache hierarchy.
func NewSystem() (*System, error) {
	m, err := vm.New()
	if err != nil {
		return nil, err
	}
	return &System{VM: m}, nil
}

// CompileC compiles a minc (C subset) translation unit into the system and
// returns the linked program. Extern declarations resolve against the
// given symbol addresses.
func (s *System) CompileC(src string, externs map[string]uint64) (*Program, error) {
	return minc.CompileAndLink(s.VM, src, externs)
}

// LoadAsm assembles a VX64 assembly program into the system and returns
// its symbol table.
func (s *System) LoadAsm(src string) (*asm.Image, error) {
	return asm.Load(s.VM, src)
}

// Do runs one specialization request through the unified rewrite entry
// point: plain, guarded (Request.Guards), or never-failing
// (Request.Mode = ModeDegrade). The returned Outcome.Addr is always a
// drop-in replacement for the requested function.
func (s *System) Do(req *Request) (*Outcome, error) {
	return brew.Do(s.VM, req)
}

// Rewrite generates a specialized drop-in replacement for the function at
// fn (the paper's brew_rewrite). args/fargs supply the emulated call's
// parameter setting; only parameters declared known in cfg are consulted.
//
// Deprecated: use Do with a Request.
func (s *System) Rewrite(cfg *Config, fn uint64, args []uint64, fargs []float64) (*Result, error) {
	return brew.Rewrite(s.VM, cfg, fn, args, fargs)
}

// RewriteGuarded generates a guarded specialization: a dispatcher checking
// the guards, the specialized body, and fallback to the original
// (Section III.D's profile-driven variant generation).
//
// Deprecated: use Do with Request.Guards.
func (s *System) RewriteGuarded(cfg *Config, fn uint64, guards []ParamGuard, args []uint64, fargs []float64) (*GuardedResult, error) {
	return brew.RewriteGuarded(s.VM, cfg, fn, guards, args, fargs)
}

// Call invokes a function through the VX64 ABI with integer arguments and
// returns R0.
func (s *System) Call(fn uint64, args ...uint64) (uint64, error) {
	return s.VM.Call(fn, args...)
}

// CallFloat invokes a function and returns F0.
func (s *System) CallFloat(fn uint64, intArgs []uint64, fArgs []float64) (float64, error) {
	return s.VM.CallFloat(fn, intArgs, fArgs)
}

// Disassemble renders n bytes of code at addr.
func (s *System) Disassemble(addr uint64, n int) (string, error) {
	b, err := s.VM.Mem.ReadBytes(addr, n)
	if err != nil {
		return "", err
	}
	return isa.Disassemble(b, addr, false), nil
}

// AllocHeap reserves n bytes of simulated heap and returns the address.
func (s *System) AllocHeap(n uint64) (uint64, error) { return s.VM.AllocHeap(n) }

// WriteF64 / ReadF64 access simulated memory as float64.
func (s *System) WriteF64(addr uint64, v float64) error { return s.VM.Mem.WriteF64(addr, v) }

// ReadF64 reads a float64 from simulated memory.
func (s *System) ReadF64(addr uint64) (float64, error) { return s.VM.Mem.ReadF64(addr) }

// WriteF64Slice stores vals consecutively at addr.
func (s *System) WriteF64Slice(addr uint64, vals []float64) error {
	return s.VM.WriteF64Slice(addr, vals)
}

// ReadF64Slice loads n float64 values starting at addr.
func (s *System) ReadF64Slice(addr uint64, n int) ([]float64, error) {
	return s.VM.ReadF64Slice(addr, n)
}

// BatchRequest is one rewrite in a RewriteBatch call.
type BatchRequest = brew.BatchRequest

// RewriteBatch performs several independent rewrites concurrently
// (tracing only reads machine memory; installation is serialized). The
// machine must not execute code while the batch runs.
//
// Deprecated: use Do per request, or internal/brewsvc for a long-lived
// concurrent specialization service with coalescing and caching.
func (s *System) RewriteBatch(reqs []BatchRequest) ([]*Result, []error) {
	return brew.RewriteBatch(s.VM, reqs)
}
