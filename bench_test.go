// Benchmarks: one per reproduced evaluation entry (DESIGN.md experiment
// index). Each op performs the experiment's measured kernel work on the
// simulated machine; "emcycles/op" reports the emulated cycle count, the
// quantity the reproduction compares against the paper's runtimes.
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/brew-bench
package repro_test

import (
	"testing"

	"repro/internal/brew"
	"repro/internal/minc"
	"repro/internal/pgas"
	"repro/internal/stencil"
	"repro/internal/vm"
)

const benchXS, benchYS, benchIters = 32, 24, 1

// benchStencil measures one kernel variant through the sweep driver.
func benchStencil(b *testing.B, setup func(w *stencil.Workload) (func() (float64, error), error)) {
	b.Helper()
	w, err := stencil.New(vm.MustNew(), benchXS, benchYS)
	if err != nil {
		b.Fatal(err)
	}
	run, err := setup(w)
	if err != nil {
		b.Fatal(err)
	}
	c0 := w.M.Stats.Cycles
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(w.M.Stats.Cycles-c0)/float64(b.N), "emcycles/op")
}

func BenchmarkE1aGeneric(b *testing.B) {
	benchStencil(b, func(w *stencil.Workload) (func() (float64, error), error) {
		return func() (float64, error) { return w.RunSweeps(w.Apply, false, benchIters) }, nil
	})
}

func BenchmarkE1bManual(b *testing.B) {
	benchStencil(b, func(w *stencil.Workload) (func() (float64, error), error) {
		return func() (float64, error) { return w.RunSweeps(w.ApplyManual, false, benchIters) }, nil
	})
}

func BenchmarkE1cRewritten(b *testing.B) {
	benchStencil(b, func(w *stencil.Workload) (func() (float64, error), error) {
		res, err := w.RewriteApply()
		if err != nil {
			return nil, err
		}
		return func() (float64, error) { return w.RunSweeps(res.Addr, false, benchIters) }, nil
	})
}

func BenchmarkE2aGroupedGeneric(b *testing.B) {
	benchStencil(b, func(w *stencil.Workload) (func() (float64, error), error) {
		return func() (float64, error) { return w.RunSweeps(w.ApplyGrouped, true, benchIters) }, nil
	})
}

func BenchmarkE2bGroupedRewritten(b *testing.B) {
	benchStencil(b, func(w *stencil.Workload) (func() (float64, error), error) {
		res, err := w.RewriteApplyGrouped()
		if err != nil {
			return nil, err
		}
		return func() (float64, error) { return w.RunSweeps(res.Addr, true, benchIters) }, nil
	})
}

func BenchmarkE3aManualInlined(b *testing.B) {
	benchStencil(b, func(w *stencil.Workload) (func() (float64, error), error) {
		return func() (float64, error) { return w.RunSweepsInlined(w.SweepInlined, benchIters) }, nil
	})
}

func BenchmarkE3bSweepRewritten(b *testing.B) {
	benchStencil(b, func(w *stencil.Workload) (func() (float64, error), error) {
		res, err := w.RewriteSweep()
		if err != nil {
			return nil, err
		}
		return func() (float64, error) { return w.RunRewrittenSweeps(res.Addr, benchIters) }, nil
	})
}

// X1: unrolling policy.
func benchX1(b *testing.B, opts brew.FuncOpts) {
	benchStencil(b, func(w *stencil.Workload) (func() (float64, error), error) {
		cfg := brew.NewConfig().
			SetParam(2, brew.ParamKnown).
			SetParamPtrToKnown(3, stencil.StructSSize)
		cfg.SetFuncOpts(w.Apply, opts)
		res, err := brew.Rewrite(w.M, cfg, w.Apply, []uint64{0, uint64(w.XS), w.S5}, nil)
		if err != nil {
			return nil, err
		}
		return func() (float64, error) { return w.RunSweeps(res.Addr, false, benchIters) }, nil
	})
}

func BenchmarkX1UnrollingFull(b *testing.B) { benchX1(b, brew.FuncOpts{}) }

func BenchmarkX1UnrollingDisabled(b *testing.B) {
	benchX1(b, brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true})
}

// X2: inlining ablation over a small-function call chain.
const x2Src = `
double leaf(double x, double y) { return x * y + 1.0; }
double mid(double x, double y) { return leaf(x, y) + leaf(y, x); }
double chain(double *a, long n) {
    double s = 0.0;
    for (long i = 0; i < n; i++) { s += mid(a[i], s); }
    return s;
}
`

func benchX2(b *testing.B, rewrite, noInline bool) {
	b.Helper()
	const n = 256
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, x2Src, nil)
	if err != nil {
		b.Fatal(err)
	}
	arr, err := m.AllocHeap(n * 8)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := m.Mem.WriteF64(arr+uint64(8*i), float64(i%5)*0.5); err != nil {
			b.Fatal(err)
		}
	}
	fn, _ := l.FuncAddr("chain")
	entry := fn
	if rewrite {
		cfg := brew.NewConfig()
		cfg.SetFuncOpts(fn, brew.FuncOpts{BranchesUnknown: true, ResultsUnknown: true})
		if noInline {
			mid, _ := l.FuncAddr("mid")
			leaf, _ := l.FuncAddr("leaf")
			cfg.SetFuncOpts(mid, brew.FuncOpts{NoInline: true})
			cfg.SetFuncOpts(leaf, brew.FuncOpts{NoInline: true})
		}
		res, err := brew.Rewrite(m, cfg, fn, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		entry = res.Addr
	}
	c0 := m.Stats.Cycles
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CallFloat(entry, []uint64{arr, n}, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(m.Stats.Cycles-c0)/float64(b.N), "emcycles/op")
}

func BenchmarkX2InliningOriginal(b *testing.B)  { benchX2(b, false, false) }
func BenchmarkX2InliningCallsKept(b *testing.B) { benchX2(b, true, true) }
func BenchmarkX2InliningInlined(b *testing.B)   { benchX2(b, true, false) }

// X3: rewriting cost and code size under different variant thresholds.
func benchX3(b *testing.B, threshold int) {
	b.Helper()
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
long f(long n) {
    long s = 0;
    long k = 0;
    for (long i = 0; i < n; i++) { k = k + 3; s += k; }
    return s;
}
`, nil)
	if err != nil {
		b.Fatal(err)
	}
	fn, _ := l.FuncAddr("f")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := brew.NewConfig()
		cfg.MaxVariantsPerAddr = threshold
		cfg.SetFuncOpts(fn, brew.FuncOpts{BranchesUnknown: true})
		if _, err := brew.Rewrite(m, cfg, fn, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX3VariantsThreshold2(b *testing.B)  { benchX3(b, 2) }
func BenchmarkX3VariantsThreshold16(b *testing.B) { benchX3(b, 16) }

// X4: guarded specialization hot/cold dispatch.
func benchX4(b *testing.B, hot bool) {
	b.Helper()
	m := vm.MustNew()
	l, err := minc.CompileAndLink(m, `
long poly(long x, long k) {
    long r = 1;
    for (long i = 0; i < k; i++) { r = r * x + i; }
    return r;
}
`, nil)
	if err != nil {
		b.Fatal(err)
	}
	poly, _ := l.FuncAddr("poly")
	g, err := brew.RewriteGuarded(m, brew.NewConfig(), poly,
		[]brew.ParamGuard{{Param: 2, Value: 12}}, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	k := uint64(12)
	if !hot {
		k = 13
	}
	c0 := m.Stats.Cycles
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Call(g.Addr, uint64(i%64), k); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(m.Stats.Cycles-c0)/float64(b.N), "emcycles/op")
}

func BenchmarkX4GuardedHot(b *testing.B)  { benchX4(b, true) }
func BenchmarkX4GuardedCold(b *testing.B) { benchX4(b, false) }

// X5: PGAS reductions.
func benchX5(b *testing.B, remote, specialize bool) {
	b.Helper()
	const nodes, bs, me = 4, 256, 1
	s, err := pgas.New(vm.MustNew(), nodes, bs, me)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Fill(func(i int) float64 { return float64(i % 7) }); err != nil {
		b.Fatal(err)
	}
	lo, hi := me*bs, (me+1)*bs
	getter := s.PgasGet
	entry := s.GSum
	if remote {
		lo, hi = (me+1)*bs, (me+2)*bs
	}
	if specialize {
		if remote {
			if err := s.Preload(lo, hi); err != nil {
				b.Fatal(err)
			}
			res, err := s.SpecializeSumPrefetched()
			if err != nil {
				b.Fatal(err)
			}
			entry, getter = res.Addr, s.PgasGetPref
		} else {
			res, err := s.SpecializeSum()
			if err != nil {
				b.Fatal(err)
			}
			entry = res.Addr
		}
	}
	c0 := s.M.Stats.Cycles
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SumWith(entry, getter, lo, hi); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.M.Stats.Cycles-c0)/float64(b.N), "emcycles/op")
}

func BenchmarkX5PgasLocalGeneric(b *testing.B)     { benchX5(b, false, false) }
func BenchmarkX5PgasLocalSpecialized(b *testing.B) { benchX5(b, false, true) }
func BenchmarkX5PgasRemoteGeneric(b *testing.B)    { benchX5(b, true, false) }
func BenchmarkX5PgasRemotePreloaded(b *testing.B)  { benchX5(b, true, true) }

// BenchmarkRewriteApply measures the rewriter itself: the cost of
// generating one specialized stencil kernel (trace + optimize + encode).
func BenchmarkRewriteApply(b *testing.B) {
	w, err := stencil.New(vm.MustNew(), benchXS, benchYS)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RewriteApply(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulator measures raw emulation speed (host ns per emulated
// instruction) on the generic stencil.
func BenchmarkEmulator(b *testing.B) {
	w, err := stencil.New(vm.MustNew(), benchXS, benchYS)
	if err != nil {
		b.Fatal(err)
	}
	i0 := w.M.Stats.Instructions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunSweeps(w.Apply, false, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(w.M.Stats.Instructions-i0)/float64(b.N), "eminstr/op")
}
